"""Semi-naive (differential) Datalog evaluation.

The first of the two classical optimizations of the paper's logic-database
era.  The insight: a rule can only derive a *new* fact in round k if at
least one of its body literals matches a fact that was itself new in round
k-1.  So instead of re-firing every rule on the whole store, each round
fires, for every rule and every positive body literal over a recursive
predicate, a differential version in which that literal reads only the
previous round's *delta*.

Negation and comparisons need no differential treatment: negated
predicates live in strictly lower strata (already complete), and
comparisons are filters.

With ``indexed=True`` (default) the working store is an
:class:`~repro.datalog.indexing.IndexedFactStore`: its persistent
per-position indexes are maintained *incrementally* as each round's delta
merges in, so — unlike the seed path, which rebuilt a transient index per
rule firing — no index is ever rebuilt across iterations.  The planner
puts the delta literal first, turning every other body literal into an
index probe on bound variables (the ``test_indexed_store`` benchmark
quantifies the scan reduction).
"""

from __future__ import annotations

import itertools

from ..obs.trace import NULL_TRACER
from .analysis import rules_by_stratum
from .ast import Literal
from .facts import FactStore
from .indexing import working_store
from .matching import evaluate_rule
from .stats import EngineStatistics

#: Unique worker-state keys so overlapping strata (or overlapping
#: engines sharing one pool) never collide.
_SN_KEYS = itertools.count()


def seminaive_evaluate(
    program, edb=None, stats=None, indexed=True, planned=True,
    tracer=NULL_TRACER, backend=None,
):
    """Compute the stratified minimal model by semi-naive iteration.

    Semantically identical to
    :func:`~repro.datalog.naive.naive_evaluate` (a property test checks
    this on random programs); asymptotically cheaper on recursive
    programs.

    With ``backend`` (a :class:`~repro.parallel.ParallelBackend`), large
    strata run their differential rounds *sharded*: each round's delta
    is hash-partitioned across the pool's workers, rule bodies are
    matched per shard in parallel, and the derived facts are unioned —
    correct for any split because differential firing is linear in the
    delta literal.  Small strata and small rounds stay serial (the
    backend's ``cost_gate`` / ``round_gate``).

    Returns:
        A :class:`FactStore` with EDB plus all derived facts.
    """
    store, _ = seminaive_iterations(
        program, edb, stats=stats, indexed=indexed, planned=planned,
        tracer=tracer, backend=backend,
    )
    return store


def seminaive_iterations(
    program, edb=None, stats=None, indexed=True, planned=True,
    tracer=NULL_TRACER, backend=None,
):
    """Semi-naive evaluation, also counting differential rounds.

    With a real ``tracer``, emits one span per stratum and one per
    differential round carrying the round's delta size (and counter
    deltas, when ``stats`` is given); sharded rounds additionally emit
    one child span per shard with the worker-measured elapsed time.

    Returns:
        ``(store, rounds)``.
    """
    store = working_store(edb, indexed)
    lookup = store.view if indexed else store.get
    for predicate, values in program.facts():
        store.add(predicate, values)
    rounds = 0

    for index, stratum_rules in enumerate(rules_by_stratum(program)):
        if not stratum_rules:
            continue
        stratum_idb = {rule.head.predicate for rule in stratum_rules}
        stratum_span = tracer.begin(
            "stratum", stats=stats, strategy="seminaive", index=index,
            rules=len(stratum_rules),
        )
        stratum_rounds = 1

        # Round 0: one full pass seeds the deltas.
        delta = FactStore()
        rounds += 1
        if stats is not None:
            stats.iterations += 1
        with tracer.span("iteration", stats=stats, round=0) as round_span:
            for rule in stratum_rules:
                derived = evaluate_rule(
                    rule, lookup, stats=stats, planned=planned
                )
                for values in derived:
                    if not store.contains(rule.head.predicate, values):
                        delta.add(rule.head.predicate, values)
            store.merge(delta)
            round_span.set(delta=delta.count())

        # Shard this stratum's differential rounds when a backend is
        # attached and the working store is big enough to pay for the
        # fan-out.  Workers get a one-time snapshot of every predicate
        # the rule bodies can read (a *cast*, replayed into respawns),
        # then each completed round's delta so their stores track the
        # parent's; the parent store stays authoritative for dedup.
        key = None
        if (
            backend is not None
            and backend.workers >= 2
            and delta.count()
            and store.count() >= backend.cost_gate
        ):
            key = "sn-%d" % next(_SN_KEYS)
            body_predicates = {
                item.atom.predicate
                for rule in stratum_rules
                for item in rule.body
                if isinstance(item, Literal)
            }
            snapshot = FactStore()
            for predicate in body_predicates:
                snapshot.add_all(predicate, store.get(predicate))
            backend.pool.reset_casts()
            backend.pool.broadcast(
                "sn_init",
                (key, snapshot, tuple(stratum_rules), indexed, planned),
            )

        # Differential rounds until the delta dries up.  Deltas stay
        # plain stores: the planner drives each differential firing off
        # the delta literal, so deltas are enumerated, never probed.
        while delta.count():
            rounds += 1
            stratum_rounds += 1
            if stats is not None:
                stats.iterations += 1
            with tracer.span(
                "iteration", stats=stats, round=stratum_rounds - 1
            ) as round_span:
                if key is not None and delta.count() >= max(
                    backend.round_gate, backend.workers
                ):
                    new_delta = _sharded_round(
                        backend, key, stratum_rules, stratum_idb, delta,
                        store, lookup, planned, stats, tracer,
                    )
                    round_span.set(sharded=True)
                else:
                    new_delta = FactStore()
                    for rule in stratum_rules:
                        for position, item in enumerate(rule.body):
                            if not (
                                isinstance(item, Literal) and item.positive
                            ):
                                continue
                            predicate = item.atom.predicate
                            if predicate not in stratum_idb:
                                continue
                            if not delta.count(predicate):
                                continue
                            derived = evaluate_rule(
                                rule,
                                lookup,
                                delta_lookup=delta.get,
                                delta_at=position,
                                stats=stats,
                                planned=planned,
                            )
                            for values in derived:
                                if not store.contains(
                                    rule.head.predicate, values
                                ):
                                    new_delta.add(rule.head.predicate, values)
                store.merge(new_delta)
                if key is not None and new_delta.count():
                    backend.pool.broadcast("sn_merge", (key, new_delta))
                round_span.set(delta=new_delta.count())
            delta = new_delta
        if key is not None:
            backend.pool.broadcast("sn_drop", key, replay=False)
            backend.pool.reset_casts()
        stratum_span.set(rounds=stratum_rounds)
        tracer.end(stratum_span)
    return store, rounds


def _sharded_round(
    backend, key, stratum_rules, stratum_idb, delta, store, lookup,
    planned, stats, tracer,
):
    """One differential round with the delta fanned out across the pool.

    Each worker already holds the stratum's working store (casts); it
    receives only this round's delta *shard* and returns the raw
    ``(predicate, values)`` pairs its differential firings derive.  The
    parent dedups against its authoritative store to form the next
    delta.  Tasks whose worker hung or died re-fire serially right here
    via the pool's fallback, so a fault costs time, never answers.
    """
    from ..parallel.partition import Partitioner

    shards = Partitioner(backend.workers).split_facts(delta)
    tasks = [("sn_fire", (key, shard)) for shard in shards if shard]

    def fallback(kind, payload):
        _key, shard_facts = payload
        shard_delta = FactStore(shard_facts)
        retry_stats = EngineStatistics()
        derived = []
        for rule in stratum_rules:
            for position, item in enumerate(rule.body):
                if not (isinstance(item, Literal) and item.positive):
                    continue
                predicate = item.atom.predicate
                if predicate not in stratum_idb:
                    continue
                if not shard_delta.count(predicate):
                    continue
                for values in evaluate_rule(
                    rule,
                    lookup,
                    delta_lookup=shard_delta.get,
                    delta_at=position,
                    stats=retry_stats,
                    planned=planned,
                ):
                    derived.append((rule.head.predicate, values))
        return derived, {"stats": retry_stats.as_dict()}

    outcomes = backend.pool.run(tasks, fallback)
    new_delta = FactStore()
    for index, outcome in enumerate(outcomes):
        for predicate, values in outcome.rows:
            if not store.contains(predicate, values):
                new_delta.add(predicate, values)
        shard_stats = outcome.extra.get("stats")
        if stats is not None and shard_stats:
            stats.merge(EngineStatistics(**shard_stats))
        if tracer.enabled:
            span = tracer.begin(
                "shard", index=index, mode=outcome.mode,
                derived=len(outcome.rows),
            )
            tracer.end(span)
            # The worker timed itself; the mirror span only saw the
            # merge, so overwrite with the measured wall clock.
            span.elapsed = outcome.elapsed
            if shard_stats:
                span.counters = shard_stats
    return new_delta
