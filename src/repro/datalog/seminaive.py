"""Semi-naive (differential) Datalog evaluation.

The first of the two classical optimizations of the paper's logic-database
era.  The insight: a rule can only derive a *new* fact in round k if at
least one of its body literals matches a fact that was itself new in round
k-1.  So instead of re-firing every rule on the whole store, each round
fires, for every rule and every positive body literal over a recursive
predicate, a differential version in which that literal reads only the
previous round's *delta*.

Negation and comparisons need no differential treatment: negated
predicates live in strictly lower strata (already complete), and
comparisons are filters.

With ``indexed=True`` (default) the working store is an
:class:`~repro.datalog.indexing.IndexedFactStore`: its persistent
per-position indexes are maintained *incrementally* as each round's delta
merges in, so — unlike the seed path, which rebuilt a transient index per
rule firing — no index is ever rebuilt across iterations.  The planner
puts the delta literal first, turning every other body literal into an
index probe on bound variables (the ``test_indexed_store`` benchmark
quantifies the scan reduction).
"""

from __future__ import annotations

from ..obs.trace import NULL_TRACER
from .analysis import rules_by_stratum
from .ast import Literal
from .facts import FactStore
from .indexing import working_store
from .matching import evaluate_rule


def seminaive_evaluate(
    program, edb=None, stats=None, indexed=True, planned=True,
    tracer=NULL_TRACER,
):
    """Compute the stratified minimal model by semi-naive iteration.

    Semantically identical to
    :func:`~repro.datalog.naive.naive_evaluate` (a property test checks
    this on random programs); asymptotically cheaper on recursive
    programs.

    Returns:
        A :class:`FactStore` with EDB plus all derived facts.
    """
    store, _ = seminaive_iterations(
        program, edb, stats=stats, indexed=indexed, planned=planned,
        tracer=tracer,
    )
    return store


def seminaive_iterations(
    program, edb=None, stats=None, indexed=True, planned=True,
    tracer=NULL_TRACER,
):
    """Semi-naive evaluation, also counting differential rounds.

    With a real ``tracer``, emits one span per stratum and one per
    differential round carrying the round's delta size (and counter
    deltas, when ``stats`` is given).

    Returns:
        ``(store, rounds)``.
    """
    store = working_store(edb, indexed)
    lookup = store.view if indexed else store.get
    for predicate, values in program.facts():
        store.add(predicate, values)
    rounds = 0

    for index, stratum_rules in enumerate(rules_by_stratum(program)):
        if not stratum_rules:
            continue
        stratum_idb = {rule.head.predicate for rule in stratum_rules}
        stratum_span = tracer.begin(
            "stratum", stats=stats, strategy="seminaive", index=index,
            rules=len(stratum_rules),
        )
        stratum_rounds = 1

        # Round 0: one full pass seeds the deltas.
        delta = FactStore()
        rounds += 1
        if stats is not None:
            stats.iterations += 1
        with tracer.span("iteration", stats=stats, round=0) as round_span:
            for rule in stratum_rules:
                derived = evaluate_rule(
                    rule, lookup, stats=stats, planned=planned
                )
                for values in derived:
                    if not store.contains(rule.head.predicate, values):
                        delta.add(rule.head.predicate, values)
            store.merge(delta)
            round_span.set(delta=delta.count())

        # Differential rounds until the delta dries up.  Deltas stay
        # plain stores: the planner drives each differential firing off
        # the delta literal, so deltas are enumerated, never probed.
        while delta.count():
            rounds += 1
            stratum_rounds += 1
            if stats is not None:
                stats.iterations += 1
            new_delta = FactStore()
            with tracer.span(
                "iteration", stats=stats, round=stratum_rounds - 1
            ) as round_span:
                for rule in stratum_rules:
                    for position, item in enumerate(rule.body):
                        if not (isinstance(item, Literal) and item.positive):
                            continue
                        predicate = item.atom.predicate
                        if predicate not in stratum_idb:
                            continue
                        if not delta.count(predicate):
                            continue
                        derived = evaluate_rule(
                            rule,
                            lookup,
                            delta_lookup=delta.get,
                            delta_at=position,
                            stats=stats,
                            planned=planned,
                        )
                        for values in derived:
                            if not store.contains(rule.head.predicate, values):
                                new_delta.add(rule.head.predicate, values)
                store.merge(new_delta)
                round_span.set(delta=new_delta.count())
            delta = new_delta
        stratum_span.set(rounds=stratum_rounds)
        tracer.end(stratum_span)
    return store, rounds
