"""Datalog abstract syntax: terms, atoms, literals, rules, programs.

The paper's §6 records how "DATALOG, and its two main issues of query
optimization and negation, took the field by storm".  This package is that
tradition, executable: the AST here, optimization (semi-naive, magic sets)
and negation (stratification) in the sibling modules.

Conventions match the classical literature:

* A **term** is a variable or a constant.
* An **atom** is ``p(t1, ..., tn)``; a **literal** is an atom or its
  negation; comparison **built-ins** (``X < Y`` etc.) are a special atom
  kind with no stored extension.
* A **rule** is ``head :- body``; a rule with an empty body and a ground
  head is a **fact**.
* A **program** is a list of rules; predicates defined by rule heads are
  *intensional* (IDB), the rest *extensional* (EDB).
"""

from __future__ import annotations

from ..errors import DatalogError

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Variable:
    """A Datalog variable (conventionally capitalized in the syntax)."""

    __slots__ = ("name",)

    def __init__(self, name):
        if not isinstance(name, str) or not name:
            raise DatalogError("variable names must be non-empty strings")
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self):
        return hash(("Variable", self.name))

    def __repr__(self):
        return "Variable(%r)" % self.name

    def __str__(self):
        return self.name


class Constant:
    """A Datalog constant (any hashable Python value)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self):
        return hash(("Constant", self.value))

    def __repr__(self):
        return "Constant(%r)" % (self.value,)

    def __str__(self):
        if isinstance(self.value, str):
            return '"%s"' % self.value
        return str(self.value)


def make_term(value):
    """Coerce a Python value into a term.

    Strings starting with an uppercase letter or underscore become
    variables (the standard Datalog convention); everything else becomes a
    constant.  Pass :class:`Variable`/:class:`Constant` explicitly to
    override.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


# ---------------------------------------------------------------------------
# Atoms and literals
# ---------------------------------------------------------------------------


class Atom:
    """A predicate applied to terms: ``p(t1, ..., tn)``."""

    __slots__ = ("predicate", "terms")

    def __init__(self, predicate, terms=()):
        if not isinstance(predicate, str) or not predicate:
            raise DatalogError("predicate names must be non-empty strings")
        self.predicate = predicate
        self.terms = tuple(make_term(t) for t in terms)

    @property
    def arity(self):
        return len(self.terms)

    def variables(self):
        """Set of variable names occurring in the atom."""
        return {t.name for t in self.terms if isinstance(t, Variable)}

    def is_ground(self):
        return all(isinstance(t, Constant) for t in self.terms)

    def substitute(self, binding):
        """Apply a variable binding (name -> value) to the atom."""
        terms = []
        for t in self.terms:
            if isinstance(t, Variable) and t.name in binding:
                terms.append(Constant(binding[t.name]))
            else:
                terms.append(t)
        return Atom(self.predicate, terms)

    def ground_tuple(self, binding):
        """The fact tuple under ``binding``; requires full grounding."""
        values = []
        for t in self.terms:
            if isinstance(t, Constant):
                values.append(t.value)
            else:
                try:
                    values.append(binding[t.name])
                except KeyError:
                    raise DatalogError(
                        "unbound variable %r grounding %s" % (t.name, self)
                    ) from None
        return tuple(values)

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and other.predicate == self.predicate
            and other.terms == self.terms
        )

    def __hash__(self):
        return hash(("Atom", self.predicate, self.terms))

    def __repr__(self):
        return "Atom(%r, %r)" % (self.predicate, list(self.terms))

    def __str__(self):
        if not self.terms:
            return self.predicate
        return "%s(%s)" % (self.predicate, ", ".join(map(str, self.terms)))


#: Comparison operators allowed in built-in literals.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Comparison:
    """A built-in comparison literal ``left op right``.

    Built-ins have no stored extension; they evaluate over bound values.
    Safety requires their variables to be bound by positive body literals.
    """

    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        if op not in COMPARISON_OPS:
            raise DatalogError(
                "unknown comparison %r (use one of %s)"
                % (op, ", ".join(COMPARISON_OPS))
            )
        self.left = make_term(left)
        self.op = op
        self.right = make_term(right)

    def variables(self):
        return {
            t.name
            for t in (self.left, self.right)
            if isinstance(t, Variable)
        }

    def evaluate(self, binding):
        """Truth value under a binding covering all variables."""

        def value(t):
            if isinstance(t, Constant):
                return t.value
            try:
                return binding[t.name]
            except KeyError:
                raise DatalogError(
                    "unbound variable %r in comparison %s" % (t.name, self)
                ) from None

        left, right = value(self.left), value(self.right)
        try:
            if self.op == "=":
                return left == right
            if self.op == "!=":
                return left != right
            if self.op == "<":
                return left < right
            if self.op == "<=":
                return left <= right
            if self.op == ">":
                return left > right
            return left >= right
        except TypeError:
            return False

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and (other.left, other.op, other.right)
            == (self.left, self.op, self.right)
        )

    def __hash__(self):
        return hash(("Comparison", self.left, self.op, self.right))

    def __repr__(self):
        return "Comparison(%r, %r, %r)" % (self.left, self.op, self.right)

    def __str__(self):
        return "%s %s %s" % (self.left, self.op, self.right)


class Literal:
    """A positive or negated atom in a rule body."""

    __slots__ = ("atom", "positive")

    def __init__(self, atom, positive=True):
        if not isinstance(atom, Atom):
            raise DatalogError("Literal wraps an Atom, got %r" % (atom,))
        self.atom = atom
        self.positive = bool(positive)

    def variables(self):
        return self.atom.variables()

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and other.atom == self.atom
            and other.positive == self.positive
        )

    def __hash__(self):
        return hash(("Literal", self.atom, self.positive))

    def __repr__(self):
        return "Literal(%r, positive=%r)" % (self.atom, self.positive)

    def __str__(self):
        return str(self.atom) if self.positive else "not %s" % self.atom


# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------


class Rule:
    """``head :- body`` where body mixes literals and comparisons.

    Safety (checked on construction):

    * every head variable occurs in a positive body literal;
    * every variable of a negative literal occurs in a positive literal;
    * every variable of a comparison occurs in a positive literal
      (exception: ``X = constant`` comparisons bind their variable).
    """

    __slots__ = ("head", "body")

    def __init__(self, head, body=()):
        if not isinstance(head, Atom):
            raise DatalogError("rule head must be an Atom, got %r" % (head,))
        self.head = head
        self.body = tuple(body)
        for item in self.body:
            if not isinstance(item, (Literal, Comparison)):
                raise DatalogError(
                    "body items must be Literal or Comparison, got %r" % (item,)
                )
        self._check_safety()

    def _check_safety(self):
        bound = set()
        for item in self.body:
            if isinstance(item, Literal) and item.positive:
                bound |= item.variables()
            elif isinstance(item, Comparison) and item.op == "=":
                # X = c binds X (and symmetric).
                if isinstance(item.left, Variable) and isinstance(
                    item.right, Constant
                ):
                    bound.add(item.left.name)
                if isinstance(item.right, Variable) and isinstance(
                    item.left, Constant
                ):
                    bound.add(item.right.name)
        unsafe_head = self.head.variables() - bound
        if unsafe_head:
            raise DatalogError(
                "unsafe rule %s: head variables %s not bound by a positive "
                "body literal" % (self, ", ".join(sorted(unsafe_head)))
            )
        for item in self.body:
            if isinstance(item, Literal) and not item.positive:
                unsafe = item.variables() - bound
                if unsafe:
                    raise DatalogError(
                        "unsafe rule %s: negated literal %s uses unbound "
                        "variables %s"
                        % (self, item, ", ".join(sorted(unsafe)))
                    )
            if isinstance(item, Comparison):
                unsafe = item.variables() - bound
                if unsafe:
                    raise DatalogError(
                        "unsafe rule %s: comparison %s uses unbound "
                        "variables %s"
                        % (self, item, ", ".join(sorted(unsafe)))
                    )

    def is_fact(self):
        return not self.body and self.head.is_ground()

    def positive_literals(self):
        return [
            item
            for item in self.body
            if isinstance(item, Literal) and item.positive
        ]

    def negative_literals(self):
        return [
            item
            for item in self.body
            if isinstance(item, Literal) and not item.positive
        ]

    def comparisons(self):
        return [item for item in self.body if isinstance(item, Comparison)]

    def body_predicates(self):
        """Predicates used in the body, as ``(name, positive)`` pairs."""
        return [
            (item.atom.predicate, item.positive)
            for item in self.body
            if isinstance(item, Literal)
        ]

    def rename_variables(self, suffix):
        """A variant with every variable renamed (for rule isolation)."""
        mapping = {}

        def rn(term):
            if isinstance(term, Variable):
                if term.name not in mapping:
                    mapping[term.name] = Variable(term.name + suffix)
                return mapping[term.name]
            return term

        head = Atom(self.head.predicate, [rn(t) for t in self.head.terms])
        body = []
        for item in self.body:
            if isinstance(item, Literal):
                body.append(
                    Literal(
                        Atom(
                            item.atom.predicate,
                            [rn(t) for t in item.atom.terms],
                        ),
                        item.positive,
                    )
                )
            else:
                body.append(Comparison(rn(item.left), item.op, rn(item.right)))
        return Rule(head, body)

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self):
        return hash(("Rule", self.head, self.body))

    def __repr__(self):
        return "Rule(%r, %r)" % (self.head, list(self.body))

    def __str__(self):
        if not self.body:
            return "%s." % self.head
        return "%s :- %s." % (self.head, ", ".join(map(str, self.body)))


class Program:
    """An ordered collection of rules (facts included as bodyless rules)."""

    __slots__ = ("rules",)

    def __init__(self, rules=()):
        self.rules = tuple(rules)
        for rule in self.rules:
            if not isinstance(rule, Rule):
                raise DatalogError("Program holds Rules, got %r" % (rule,))
        self._check_arities()

    def _check_arities(self):
        arities = {}
        for rule in self.rules:
            atoms = [rule.head] + [
                item.atom for item in rule.body if isinstance(item, Literal)
            ]
            for atom in atoms:
                seen = arities.setdefault(atom.predicate, atom.arity)
                if seen != atom.arity:
                    raise DatalogError(
                        "predicate %r used with arities %d and %d"
                        % (atom.predicate, seen, atom.arity)
                    )

    def idb_predicates(self):
        """Predicates defined by some rule head (the intensional database)."""
        return {rule.head.predicate for rule in self.rules if rule.body}

    def fact_predicates(self):
        """Predicates asserted only by facts in the program text."""
        facts = {
            rule.head.predicate for rule in self.rules if not rule.body
        }
        return facts - self.idb_predicates()

    def edb_predicates(self):
        """Predicates only ever used in bodies (the extensional database)."""
        used = set()
        for rule in self.rules:
            for pred, _ in rule.body_predicates():
                used.add(pred)
        return used - self.idb_predicates() - self.fact_predicates()

    def facts(self):
        """Ground bodyless rules as ``(predicate, tuple)`` pairs."""
        out = []
        for rule in self.rules:
            if not rule.body:
                out.append((rule.head.predicate, rule.head.ground_tuple({})))
        return out

    def proper_rules(self):
        """Rules with a non-empty body."""
        return [rule for rule in self.rules if rule.body]

    def rules_for(self, predicate):
        """Proper rules whose head predicate is ``predicate``."""
        return [
            rule
            for rule in self.rules
            if rule.body and rule.head.predicate == predicate
        ]

    def has_negation(self):
        return any(rule.negative_literals() for rule in self.rules)

    def extend(self, rules):
        """A new program with extra rules appended."""
        return Program(self.rules + tuple(rules))

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def __eq__(self, other):
        return isinstance(other, Program) and other.rules == self.rules

    def __repr__(self):
        return "Program(%d rules)" % len(self.rules)

    def __str__(self):
        return "\n".join(str(rule) for rule in self.rules)


def atom(predicate, *terms):
    """Convenience constructor: ``atom("edge", "X", "Y")``."""
    return Atom(predicate, terms)


def lit(predicate, *terms):
    """Convenience: positive literal."""
    return Literal(Atom(predicate, terms), True)


def neg(predicate, *terms):
    """Convenience: negated literal."""
    return Literal(Atom(predicate, terms), False)
