"""Naive bottom-up Datalog evaluation.

The textbook fixpoint: fire every rule against the *entire* current store,
repeat until nothing new appears.  Simple, obviously correct, and — as the
``test_datalog_strategies`` benchmark shows — increasingly wasteful as the
database grows, because round k re-derives everything rounds 1..k-1
already produced.  It exists here as the semantics oracle and the baseline
the paper-era optimizations (semi-naive, magic sets) are measured against.

Stratified negation is supported: strata are evaluated in order, so
negated predicates are complete before any rule reads them.

Physical knobs (shared by all engines): ``indexed`` keeps the working
store in an :class:`~repro.datalog.indexing.IndexedFactStore` so rule
bodies probe persistent hash indexes instead of rescanning; ``planned``
runs the greedy join-order planner; ``stats`` collects work counters.
"""

from __future__ import annotations

from ..obs.trace import NULL_TRACER
from .analysis import rules_by_stratum
from .indexing import working_store
from .matching import evaluate_rule


def naive_evaluate(
    program,
    edb=None,
    max_iterations=None,
    stats=None,
    indexed=True,
    planned=True,
    tracer=NULL_TRACER,
):
    """Compute the (stratified) minimal model of ``program`` over ``edb``.

    Args:
        program: a :class:`~repro.datalog.ast.Program`.
        edb: a :class:`~repro.datalog.facts.FactStore` of extensional
            facts (program-text facts are added on top).
        max_iterations: optional safety cap per stratum; the fixpoint of a
            Datalog program always terminates, so this is only a guard for
            debugging engine changes.
        stats: optional :class:`~repro.datalog.stats.EngineStatistics`.
        indexed: keep facts in an indexed store (persistent probe
            indexes) instead of plain sets.
        planned: greedy join-order planning per rule firing.
        tracer: optional :class:`~repro.obs.trace.Tracer`; emits one
            span per stratum and per fixpoint round (with the new-fact
            count and, when ``stats`` is given, the round's counter
            deltas).  No-op by default.

    Returns:
        A :class:`FactStore` holding EDB and all derived IDB facts.
    """
    store, _ = _fixpoint(
        program, edb, max_iterations, stats, indexed, planned, tracer
    )
    return store


def naive_iterations(
    program, edb=None, stats=None, indexed=True, planned=True,
    tracer=NULL_TRACER,
):
    """Like :func:`naive_evaluate` but also count fixpoint rounds.

    Returns:
        ``(store, rounds)`` where ``rounds`` sums the per-stratum rounds
        (including each stratum's final no-change round).  Used by the
        benchmarks to report work alongside wall-clock time.
    """
    return _fixpoint(program, edb, None, stats, indexed, planned, tracer)


def _fixpoint(program, edb, max_iterations, stats, indexed, planned,
              tracer=NULL_TRACER):
    store = working_store(edb, indexed)
    lookup = store.view if indexed else store.get
    for predicate, values in program.facts():
        store.add(predicate, values)

    rounds = 0
    for index, stratum_rules in enumerate(rules_by_stratum(program)):
        if not stratum_rules:
            continue
        stratum_span = tracer.begin(
            "stratum", stats=stats, strategy="naive", index=index,
            rules=len(stratum_rules),
        )
        iterations = 0
        changed = True
        while changed:
            changed = False
            iterations += 1
            rounds += 1
            if stats is not None:
                stats.iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise RuntimeError(
                    "naive evaluation exceeded %d iterations" % max_iterations
                )
            with tracer.span(
                "iteration", stats=stats, round=iterations
            ) as round_span:
                before = store.count()
                for rule in stratum_rules:
                    derived = evaluate_rule(
                        rule, lookup, stats=stats, planned=planned
                    )
                    if store.add_all(rule.head.predicate, derived):
                        changed = True
                round_span.set(new_facts=store.count() - before)
        stratum_span.set(rounds=iterations)
        tracer.end(stratum_span)
    return store, rounds
