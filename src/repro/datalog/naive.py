"""Naive bottom-up Datalog evaluation.

The textbook fixpoint: fire every rule against the *entire* current store,
repeat until nothing new appears.  Simple, obviously correct, and — as the
``test_datalog_strategies`` benchmark shows — increasingly wasteful as the
database grows, because round k re-derives everything rounds 1..k-1
already produced.  It exists here as the semantics oracle and the baseline
the paper-era optimizations (semi-naive, magic sets) are measured against.

Stratified negation is supported: strata are evaluated in order, so
negated predicates are complete before any rule reads them.

Physical knobs (shared by all engines): ``indexed`` keeps the working
store in an :class:`~repro.datalog.indexing.IndexedFactStore` so rule
bodies probe persistent hash indexes instead of rescanning; ``planned``
runs the greedy join-order planner; ``stats`` collects work counters.
"""

from __future__ import annotations

from .analysis import rules_by_stratum
from .indexing import working_store
from .matching import evaluate_rule


def naive_evaluate(
    program,
    edb=None,
    max_iterations=None,
    stats=None,
    indexed=True,
    planned=True,
):
    """Compute the (stratified) minimal model of ``program`` over ``edb``.

    Args:
        program: a :class:`~repro.datalog.ast.Program`.
        edb: a :class:`~repro.datalog.facts.FactStore` of extensional
            facts (program-text facts are added on top).
        max_iterations: optional safety cap per stratum; the fixpoint of a
            Datalog program always terminates, so this is only a guard for
            debugging engine changes.
        stats: optional :class:`~repro.datalog.stats.EngineStatistics`.
        indexed: keep facts in an indexed store (persistent probe
            indexes) instead of plain sets.
        planned: greedy join-order planning per rule firing.

    Returns:
        A :class:`FactStore` holding EDB and all derived IDB facts.
    """
    store, _ = _fixpoint(
        program, edb, max_iterations, stats, indexed, planned
    )
    return store


def naive_iterations(
    program, edb=None, stats=None, indexed=True, planned=True
):
    """Like :func:`naive_evaluate` but also count fixpoint rounds.

    Returns:
        ``(store, rounds)`` where ``rounds`` sums the per-stratum rounds
        (including each stratum's final no-change round).  Used by the
        benchmarks to report work alongside wall-clock time.
    """
    return _fixpoint(program, edb, None, stats, indexed, planned)


def _fixpoint(program, edb, max_iterations, stats, indexed, planned):
    store = working_store(edb, indexed)
    lookup = store.view if indexed else store.get
    for predicate, values in program.facts():
        store.add(predicate, values)

    rounds = 0
    for stratum_rules in rules_by_stratum(program):
        if not stratum_rules:
            continue
        iterations = 0
        changed = True
        while changed:
            changed = False
            iterations += 1
            rounds += 1
            if stats is not None:
                stats.iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise RuntimeError(
                    "naive evaluation exceeded %d iterations" % max_iterations
                )
            for rule in stratum_rules:
                derived = evaluate_rule(
                    rule, lookup, stats=stats, planned=planned
                )
                if store.add_all(rule.head.predicate, derived):
                    changed = True
    return store, rounds
