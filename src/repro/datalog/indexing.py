"""Indexed fact storage: the shared physical layer under every engine.

The seed implementation paid full-scan costs everywhere: each
``extend_bindings`` call rebuilt a transient hash index over an atom's
whole fact set, every rule firing, every fixpoint round.
:class:`IndexedFactStore` replaces that with *persistent* per-predicate,
per-argument-position hash indexes that are built lazily on first probe
and then maintained **incrementally** as facts arrive — across semi-naive
deltas there is no per-iteration rebuild, only O(1) insertions.

Indexes are keyed by a tuple of argument positions (the probe pattern a
rule body actually uses, constants included), so the handful of patterns
a program exhibits each get one index for the program's whole lifetime.

Engines hand :meth:`IndexedFactStore.view` callables to the matching
layer; a :class:`PredicateView` quacks like a set of tuples (iteration,
length, membership) but additionally exposes ``index_for`` so
:func:`~repro.datalog.matching.extend_bindings` can probe instead of
scan.
"""

from __future__ import annotations

from .facts import FactStore


class PredicateView:
    """A live, set-like view of one predicate inside an indexed store.

    Iteration, ``len`` and membership delegate to the store (so the view
    tracks subsequent insertions); ``index_for`` exposes the store's
    persistent indexes to the matching layer.
    """

    __slots__ = ("store", "predicate")

    def __init__(self, store, predicate):
        self.store = store
        self.predicate = predicate

    def __iter__(self):
        return iter(self.store.get(self.predicate))

    def __len__(self):
        return self.store.count(self.predicate)

    def __contains__(self, values):
        return self.store.contains(self.predicate, values)

    def index_for(self, positions, stats=None):
        """The store's persistent index for this predicate and pattern."""
        return self.store.index_for(self.predicate, positions, stats)

    def __repr__(self):
        return "PredicateView(%r, %d tuples)" % (self.predicate, len(self))


class IndexedFactStore(FactStore):
    """A :class:`FactStore` with incrementally maintained hash indexes.

    ``index_for(predicate, positions)`` returns ``{key_values: [tuples]}``
    where ``key_values`` projects a tuple onto ``positions``.  The first
    request for a pattern scans the current extension once; every later
    :meth:`add` updates all existing indexes for that predicate in O(1)
    per index — which is what makes the semi-naive loop index-stable.
    """

    __slots__ = ("_indexes",)

    def __init__(self, facts=None):
        self._indexes = {}  # predicate -> {positions: {key: [tuples]}}
        super().__init__(facts)

    # -- mutation (index-maintaining overrides) --------------------------

    def add(self, predicate, values):
        values = tuple(values)
        added = super().add(predicate, values)
        if added:
            for positions, table in self._indexes.get(predicate, {}).items():
                key = tuple(values[p] for p in positions)
                table.setdefault(key, []).append(values)
        return added

    # -- index access ----------------------------------------------------

    def index_for(self, predicate, positions, stats=None):
        """Get-or-build the hash index on ``positions`` for ``predicate``.

        Args:
            predicate: predicate name.
            positions: tuple of argument positions forming the key.
            stats: optional
                :class:`~repro.datalog.stats.EngineStatistics`; the
                one-time build scan is charged to it.

        Returns:
            dict mapping key tuples to lists of matching fact tuples.
        """
        positions = tuple(positions)
        tables = self._indexes.setdefault(predicate, {})
        table = tables.get(positions)
        if table is None:
            table = {}
            tuples = self.get(predicate)
            for tup in tuples:
                table.setdefault(
                    tuple(tup[p] for p in positions), []
                ).append(tup)
            tables[positions] = table
            if stats is not None:
                stats.index_builds += 1
                stats.facts_scanned += len(tuples)
        return table

    def view(self, predicate):
        """A probe-capable view of one predicate (see engines)."""
        return PredicateView(self, predicate)

    def index_patterns(self, predicate):
        """Position patterns currently indexed for ``predicate``."""
        return sorted(self._indexes.get(predicate, ()))

    # -- copies (indexes are rebuilt lazily, never shared) ---------------

    def copy(self):
        store = IndexedFactStore()
        store._facts = {p: set(s) for p, s in self._facts.items()}
        return store

    def restrict(self, predicates):
        store = IndexedFactStore()
        for predicate in predicates:
            if predicate in self._facts:
                store._facts[predicate] = set(self._facts[predicate])
        return store


def working_store(edb=None, indexed=True):
    """The engines' working-store constructor.

    Copies ``edb`` (engines must never mutate their input) into an
    :class:`IndexedFactStore` when ``indexed`` — the configuration every
    engine defaults to — or a plain :class:`FactStore` for the unindexed
    baseline the benchmarks measure against.
    """
    cls = IndexedFactStore if indexed else FactStore
    store = cls()
    if edb is not None:
        for predicate in edb.predicates():
            store.add_all(predicate, edb.get(predicate))
    return store
