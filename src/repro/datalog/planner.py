"""Greedy join-order planning for rule bodies.

The classical lesson — rediscovered by pattern-based Datalog engines —
is that rule syntax makes selectivity visible without any statistics: an
atom whose arguments are constants or already-bound variables can be
answered by an index probe instead of a scan, so the planner just orders
a body's positive literals greedily:

1. the semi-naive *delta* literal always goes first (it is the
   differential driver and, after the first rounds, the smallest input);
2. otherwise repeatedly take the literal with the lowest **estimated
   match count** under the shared optimizer cost surface
   (:func:`repro.opt.cost.estimate_literal_matches`): live relation
   size discounted by the classical equality selectivity per bound key
   position.  This one formula subsumes the old two-level heuristic —
   more bound positions shrink the estimate (most-bound first) and
   between equally-bound literals the smaller relation wins
   (smallest-relation first);
3. break ties by original body position (determinism).

The plan is computed per firing from live relation sizes (they change
every fixpoint round — the catalog layer never sees them, the sizes
*are* the statistics), which costs O(k^2) for a k-literal body — noise
next to the joins it orders.  :func:`has_empty_source` backs the
planner's early-exit: any positive literal over an empty relation proves
the rule derives nothing this firing.

Ordering only the *positive* literals is semantics-preserving: positive
conjunction is commutative, and comparisons/negations are applied by the
matching layer as soon as their variables are bound regardless of where
they sat in the body text.
"""

from __future__ import annotations

from ..opt.cost import estimate_literal_matches
from .ast import Constant, Variable


def bound_positions(atom, bound_vars):
    """Number of probe-key positions the atom offers right now.

    A position counts when it holds a constant or a variable already in
    ``bound_vars`` — exactly the positions ``extend_bindings`` can put in
    an index key.
    """
    count = 0
    for term in atom.terms:
        if isinstance(term, Constant):
            count += 1
        elif isinstance(term, Variable) and term.name in bound_vars:
            count += 1
    return count


def plan_order(positives, sizes, delta_at=None, bound_vars=()):
    """Greedily order a rule body's positive literals.

    Args:
        positives: list of ``(body_index, literal)`` pairs.
        sizes: mapping ``body_index -> len(relation)`` (live sizes).
        delta_at: body index of the semi-naive delta literal, if any.
        bound_vars: variable names already bound before any literal runs
            (e.g. by an ``X = c`` equality).

    Returns:
        The same pairs, reordered: delta literal first, then repeatedly
        the cheapest remaining literal (lowest estimated match count,
        leftmost on ties).
    """
    remaining = list(positives)
    bound = set(bound_vars)
    order = []

    def take(pair):
        remaining.remove(pair)
        order.append(pair)
        bound.update(pair[1].atom.variables())

    if delta_at is not None:
        for pair in remaining:
            if pair[0] == delta_at:
                take(pair)
                break
    while remaining:
        take(
            min(
                remaining,
                key=lambda pair: (
                    estimate_literal_matches(
                        sizes[pair[0]],
                        bound_positions(pair[1].atom, bound),
                    ),
                    pair[0],
                ),
            )
        )
    return order


def has_empty_source(positives, sources):
    """True when some positive literal reads an empty relation.

    The planner's early exit: a conjunction with an empty positive
    conjunct is unsatisfiable, so the rule can be skipped without
    scanning anything (the guard the empty-predicate regression tests
    pin down).
    """
    return any(len(sources[index]) == 0 for index, _ in positives)
