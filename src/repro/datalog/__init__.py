"""Datalog: recursive queries, their optimizations, and negation.

The paper's logic-database era, executable: bottom-up naive and
semi-naive engines, the magic-sets rewriting, QSQ-style top-down tabling,
stratified negation, and a parser for the textbook syntax.
"""

from .analysis import (
    DependencyGraph,
    is_linear,
    is_recursive,
    is_stratifiable,
    predicate_sccs,
    rules_by_stratum,
    stratify,
)
from .ast import (
    Atom,
    Comparison,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
    atom,
    lit,
    neg,
)
from .engine import STRATEGIES, DatalogEngine, cross_check
from .facts import FactStore
from .indexing import IndexedFactStore, PredicateView, working_store
from .magic import magic_evaluate, magic_transform, match_query
from .naive import naive_evaluate, naive_iterations
from .negation import holds, negative_facts, perfect_model
from .parser import parse_program, parse_query, parse_rule
from .planner import plan_order
from .seminaive import seminaive_evaluate, seminaive_iterations
from .stats import EngineStatistics
from .topdown import TopDownEngine, topdown_query

__all__ = [
    "Atom",
    "Comparison",
    "Constant",
    "DatalogEngine",
    "DependencyGraph",
    "EngineStatistics",
    "FactStore",
    "IndexedFactStore",
    "Literal",
    "PredicateView",
    "Program",
    "Rule",
    "STRATEGIES",
    "TopDownEngine",
    "Variable",
    "atom",
    "cross_check",
    "holds",
    "is_linear",
    "is_recursive",
    "is_stratifiable",
    "lit",
    "magic_evaluate",
    "magic_transform",
    "match_query",
    "naive_evaluate",
    "naive_iterations",
    "neg",
    "negative_facts",
    "parse_program",
    "parse_query",
    "parse_rule",
    "perfect_model",
    "plan_order",
    "predicate_sccs",
    "rules_by_stratum",
    "seminaive_evaluate",
    "seminaive_iterations",
    "stratify",
    "topdown_query",
    "working_store",
]
