"""Fact stores: the runtime extensional/intensional databases.

Engines operate on a :class:`FactStore` — a mapping from predicate name to
a set of ground tuples.  Bridges to the relational substrate
(:meth:`FactStore.from_database`, :meth:`FactStore.to_database`) keep the
Datalog world interoperable with the algebra/calculus world, mirroring how
deductive databases sat on top of relational storage.
"""

from __future__ import annotations

from ..errors import DatalogError


class FactStore:
    """A mutable map ``predicate -> set of ground tuples``."""

    __slots__ = ("_facts",)

    def __init__(self, facts=None):
        self._facts = {}
        if facts:
            for predicate, tuples in facts.items():
                for tup in tuples:
                    self.add(predicate, tup)

    # -- mutation -------------------------------------------------------

    def add(self, predicate, values):
        """Insert one ground tuple; returns True if it was new."""
        values = tuple(values)
        existing = self._facts.setdefault(predicate, set())
        if values in existing:
            return False
        if existing:
            sample = next(iter(existing))
            if len(sample) != len(values):
                raise DatalogError(
                    "predicate %r used with arities %d and %d"
                    % (predicate, len(sample), len(values))
                )
        existing.add(values)
        return True

    def add_all(self, predicate, tuples):
        """Insert many tuples; returns the number actually new."""
        added = 0
        for tup in tuples:
            if self.add(predicate, tup):
                added += 1
        return added

    def merge(self, other):
        """Union another store into this one; returns tuples added."""
        added = 0
        for predicate in other.predicates():
            added += self.add_all(predicate, other.get(predicate))
        return added

    # -- queries -----------------------------------------------------------

    def get(self, predicate):
        """The (possibly empty) set of tuples for ``predicate``."""
        return self._facts.get(predicate, frozenset())

    def contains(self, predicate, values):
        return tuple(values) in self._facts.get(predicate, ())

    def predicates(self):
        return sorted(self._facts)

    def arity(self, predicate):
        """Arity of a predicate with at least one fact, else None."""
        tuples = self._facts.get(predicate)
        if not tuples:
            return None
        return len(next(iter(tuples)))

    def count(self, predicate=None):
        """Number of facts for one predicate, or in total."""
        if predicate is not None:
            return len(self._facts.get(predicate, ()))
        return sum(len(s) for s in self._facts.values())

    def copy(self):
        store = FactStore()
        store._facts = {p: set(s) for p, s in self._facts.items()}
        return store

    def restrict(self, predicates):
        """A copy containing only the given predicates."""
        store = FactStore()
        for predicate in predicates:
            if predicate in self._facts:
                store._facts[predicate] = set(self._facts[predicate])
        return store

    def active_domain(self):
        values = set()
        for tuples in self._facts.values():
            for tup in tuples:
                values.update(tup)
        return values

    # -- relational bridge ---------------------------------------------------

    @classmethod
    def from_database(cls, db):
        """Ingest a :class:`~repro.relational.database.Database`."""
        store = cls()
        for name in db.names():
            store._facts[name] = set(db[name].tuples)
        return store

    def to_database(self, attribute_names=None):
        """Export as a relational Database.

        Args:
            attribute_names: optional ``{predicate: (attr, ...)}``;
                defaults to ``c0, c1, ...`` per predicate.
        """
        from ..relational.database import Database
        from ..relational.relation import Relation
        from ..relational.schema import RelationSchema

        attribute_names = attribute_names or {}
        db = Database()
        for predicate in self.predicates():
            tuples = self._facts[predicate]
            arity = len(next(iter(tuples))) if tuples else 0
            attrs = attribute_names.get(
                predicate, tuple("c%d" % i for i in range(arity))
            )
            schema = RelationSchema(predicate, attrs)
            # system=True: a store may hold sys_ snapshots (introspect).
            db.add(Relation(schema, tuples, validate=False), system=True)
        return db

    # -- dunder -----------------------------------------------------------------

    def __contains__(self, predicate):
        return predicate in self._facts

    def __eq__(self, other):
        if not isinstance(other, FactStore):
            return NotImplemented
        mine = {p: s for p, s in self._facts.items() if s}
        theirs = {p: s for p, s in other._facts.items() if s}
        return mine == theirs

    def __len__(self):
        return self.count()

    def __repr__(self):
        parts = [
            "%s:%d" % (p, len(self._facts[p])) for p in self.predicates()
        ]
        return "FactStore(%s)" % ", ".join(parts)
