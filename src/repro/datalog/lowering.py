"""Datalog-as-algebra: lowering non-recursive programs to logical plans.

The classical result (Papadimitriou's §6 territory): non-recursive
Datalog is exactly the positive-existential fragment of relational
algebra, and stratified non-recursive Datalog with negation adds
antijoins.  This module makes the inclusion executable — each IDB
predicate of a non-recursive program compiles to one algebra expression
(a union of select/project/rename/join/antijoin plans, one per rule),
which then runs on the shared streaming executor like any SQL or
calculus query.

Recursion genuinely needs the fixpoint machinery, so
:func:`is_lowerable` gates the translation and the engine falls back to
the bottom-up evaluators for recursive programs.

The attribute convention matches :meth:`FactStore.to_database`: every
predicate's relation has columns ``c0..c{n-1}``.
"""

from __future__ import annotations

from ..errors import DatalogError
from ..obs.trace import NULL_TRACER
from ..relational import algebra as ra
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from .analysis import is_recursive, predicate_sccs
from .ast import Comparison, Constant, Variable
from .facts import FactStore


def is_lowerable(program):
    """Can this program run as algebra plans? (Exactly: non-recursive.)"""
    return not is_recursive(program)


def _columns(arity):
    return tuple("c%d" % i for i in range(arity))


def lower_atom(atom):
    """One body atom as an algebra expression whose attributes are the
    atom's variables (first occurrences, in term order).

    Constants become selections; a repeated variable becomes an equality
    selection between its positional handles.  This is the same recipe
    Codd's calculus translation uses for calculus atoms.
    """
    handles = tuple("__p%d" % i for i in range(atom.arity))
    columns = _columns(atom.arity)
    mapping = dict(zip(columns, handles))
    expr = ra.Rename(ra.RelationRef(atom.predicate), mapping)
    keep = []
    variables = []
    first_handle = {}
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            expr = ra.Selection(
                expr,
                ra.Comparison(ra.Attr(handles[i]), "=", ra.Const(term.value)),
            )
        elif term.name in first_handle:
            expr = ra.Selection(
                expr,
                ra.Comparison(
                    ra.Attr(first_handle[term.name]),
                    "=",
                    ra.Attr(handles[i]),
                ),
            )
        else:
            first_handle[term.name] = handles[i]
            keep.append(handles[i])
            variables.append(term.name)
    expr = ra.Projection(expr, tuple(keep))
    rename = {
        h: v for h, v in zip(keep, variables) if h != v
    }
    return ra.Rename(expr, rename) if rename else expr


def _comparison_condition(comparison):
    def operand(term):
        if isinstance(term, Variable):
            return ra.Attr(term.name)
        return ra.Const(term.value)

    return ra.Comparison(
        operand(comparison.left), comparison.op, operand(comparison.right)
    )


def lower_rule(rule):
    """One rule as an algebra expression with attributes ``c0..ck-1``
    (the head's columns).

    Positive literals natural-join on shared variables; ``X = c``
    comparisons on unbound variables become singleton products (they
    *bind*, per the safety rules); remaining comparisons and negated
    literals become selections and antijoins over the bound body.
    """
    expr = None
    bound = set()
    for literal in rule.positive_literals():
        atom_expr = lower_atom(literal.atom)
        expr = (
            atom_expr if expr is None else ra.NaturalJoin(expr, atom_expr)
        )
        bound |= literal.variables()
    if expr is None:
        # Bodies of only comparisons: seed with the 0-ary "true" relation
        # so binding products have something to extend.
        expr = ra.ConstantRelation(
            Relation(RelationSchema("__unit", ()), [()], validate=False)
        )

    deferred = []
    for comparison in rule.comparisons():
        binds = _binding_equality(comparison, bound)
        if binds is not None:
            variable, value = binds
            expr = ra.Product(
                expr,
                ra.ConstantRelation(
                    ra.singleton_relation(variable, value)
                ),
            )
            bound.add(variable)
        else:
            deferred.append(comparison)
    for comparison in deferred:
        expr = ra.Selection(expr, _comparison_condition(comparison))

    for literal in rule.negative_literals():
        expr = ra.Antijoin(expr, lower_atom(literal.atom))

    # Head shaping: one column per head position, then rename to c0..ck-1.
    columns = []
    used = set()
    for i, term in enumerate(rule.head.terms):
        if isinstance(term, Constant):
            handle = "__h%d" % i
            expr = ra.Product(
                expr,
                ra.ConstantRelation(
                    ra.singleton_relation(handle, term.value)
                ),
            )
            columns.append(handle)
        elif term.name in used:
            handle = "__h%d" % i
            copy = ra.Rename(
                ra.Projection(expr, (term.name,)), {term.name: handle}
            )
            expr = ra.Selection(
                ra.Product(expr, copy),
                ra.Comparison(ra.Attr(term.name), "=", ra.Attr(handle)),
            )
            columns.append(handle)
        else:
            used.add(term.name)
            columns.append(term.name)
    expr = ra.Projection(expr, tuple(columns))
    out = _columns(rule.head.arity)
    rename = {c: o for c, o in zip(columns, out) if c != o}
    return ra.Rename(expr, rename) if rename else expr


def _binding_equality(comparison, bound):
    """``(variable, value)`` when the comparison binds a fresh variable
    to a constant (``X = c`` / ``c = X``), else None."""
    if comparison.op != "=":
        return None
    left, right = comparison.left, comparison.right
    if (
        isinstance(left, Variable)
        and isinstance(right, Constant)
        and left.name not in bound
    ):
        return (left.name, right.value)
    if (
        isinstance(right, Variable)
        and isinstance(left, Constant)
        and right.name not in bound
    ):
        return (right.name, left.value)
    return None


def lower_predicate(program, predicate):
    """All rules for one IDB predicate, unioned into a single plan."""
    rules = program.rules_for(predicate)
    if not rules:
        raise DatalogError(
            "predicate %r has no proper rules to lower" % (predicate,)
        )
    expr = lower_rule(rules[0])
    for rule in rules[1:]:
        expr = ra.Union(expr, lower_rule(rule))
    return expr


def lower_program(program):
    """Lowered plans for every IDB predicate, dependencies first.

    Returns:
        A list of ``(predicate, expression)`` pairs; evaluating them in
        order respects the program's data flow (and its stratification —
        non-recursive programs are always stratifiable with one
        predicate per stratum).

    Raises:
        DatalogError: for recursive programs (not lowerable).
    """
    if not is_lowerable(program):
        raise DatalogError(
            "recursive programs cannot be lowered to algebra; "
            "use the fixpoint engines"
        )
    idb = program.idb_predicates()
    ordered = []
    for component in predicate_sccs(program):
        for predicate in sorted(component):
            if predicate in idb:
                ordered.append((predicate, lower_predicate(program, predicate)))
    return ordered


def _program_arities(program):
    arities = {}
    for rule in program:
        arities[rule.head.predicate] = rule.head.arity
        for literal in rule.body:
            if hasattr(literal, "atom"):
                arities[literal.atom.predicate] = literal.atom.arity
    return arities


def lowered_evaluate(program, edb=None, stats=None, tracer=NULL_TRACER,
                     kernel_cache=None):
    """The minimal model of a non-recursive program, via algebra plans.

    Semantics match :func:`~repro.datalog.naive.naive_evaluate`: the
    result holds the EDB, program-text facts, and every derived IDB
    fact.  Work is charged to ``stats`` by the streaming executor.

    With a ``kernel_cache``, each predicate's plan runs as a fused
    compiled kernel when the generator supports its shape; refused
    plans run interpreted and count in the cache's fallback counters.

    Raises:
        DatalogError: for recursive programs.
    """
    # Imported here, not at module top: repro.plan.executor needs the
    # EngineStatistics counters from this package, so a module-level
    # import would close an import cycle through the package __init__s.
    from ..plan.executor import execute_physical
    from ..plan.logical import canonicalize

    store = edb.copy() if edb is not None else FactStore()
    for predicate, values in program.facts():
        store.add(predicate, values)

    arities = _program_arities(program)
    for predicate, tuples in ((p, store.get(p)) for p in store.predicates()):
        if tuples:
            arities.setdefault(predicate, len(next(iter(tuples))))

    db = Database()
    for predicate, arity in sorted(arities.items()):
        # system=True: the scratch EDB may legitimately hold snapshots
        # of sys_ relations (see repro.obs.introspect).
        db.add(
            Relation(
                RelationSchema(predicate, _columns(arity)),
                store.get(predicate),
                validate=False,
            ),
            system=True,
        )

    db_schema = db.schema()
    with tracer.span("datalog_lowered", stats=stats) as program_span:
        plans = lower_program(program)
        for predicate, expr in plans:
            with tracer.span(
                "predicate", stats=stats, predicate=predicate
            ) as span:
                plan = canonicalize(expr, db_schema)
                kernel = None
                if kernel_cache is not None:
                    kernel, _reason = kernel_cache.resolve(plan, db)
                if kernel is not None:
                    result, _tally = kernel.execute(db, stats)
                else:
                    result, _tally = execute_physical(plan, db, stats)
                span.set(rows=len(result))
            store.add_all(predicate, result.tuples)
            db.replace(
                Relation(
                    db[predicate].schema, store.get(predicate), validate=False
                ),
                system=True,
            )
        program_span.set(predicates=len(plans))
    return store
