"""Magic-sets rewriting: goal-directed bottom-up evaluation.

The second classical optimization of the logic-database era — and the one
the paper laments never shipped in products ("the major disappointment is
perhaps the absence of database products that incorporate some of the
beautiful ideas our community has developed for the implementation of
recursive queries").  Magic sets make bottom-up evaluation *goal
directed*: the program is rewritten so that the fixpoint only derives
facts relevant to a given query's bound arguments.

The pipeline is the standard one:

1. **Adornment** — starting from the query's bound/free pattern, propagate
   binding information through each rule left to right (the left-to-right
   sideways-information-passing strategy), producing an adorned program in
   which every IDB predicate carries a pattern like ``bf``.
2. **Magic rules** — for each adorned rule and each IDB body literal, a
   rule deriving the *magic* predicate (the set of bound-argument values
   that will ever be asked for).
3. **Modified rules** — the original rules, guarded by their head's magic
   predicate.
4. **Seed** — a magic fact for the query itself.

The transformed program evaluates with the semi-naive engine; magic is a
*logical* optimization stacked on the *physical* one.

Scope: positive programs (no negation) — magic sets for stratified
negation requires the more delicate doubled program and is out of the
classical core this module reproduces.
"""

from __future__ import annotations

from ..errors import DatalogError
from ..obs.trace import NULL_TRACER
from .ast import Atom, Constant, Literal, Program, Rule, Variable
from .facts import FactStore
from .seminaive import seminaive_evaluate

#: Separator used to build adorned/magic predicate names.  Deliberately
#: not parseable by the Datalog grammar so generated names cannot collide
#: with user predicates.
_AD = "@"
_MAGIC = "m~"


def adornment_of(atom, bound_vars=()):
    """The b/f pattern of an atom given already-bound variables."""
    bound_vars = set(bound_vars)
    pattern = []
    for term in atom.terms:
        if isinstance(term, Constant) or (
            isinstance(term, Variable) and term.name in bound_vars
        ):
            pattern.append("b")
        else:
            pattern.append("f")
    return "".join(pattern)


def adorned_name(predicate, adornment):
    """Name of the adorned version of a predicate."""
    return "%s%s%s" % (predicate, _AD, adornment)


def magic_name(predicate, adornment):
    """Name of the magic predicate for an adorned predicate."""
    return "%s%s" % (_MAGIC, adorned_name(predicate, adornment))


def _bound_terms(atom, adornment):
    return [t for t, a in zip(atom.terms, adornment) if a == "b"]


class MagicTransform:
    """Result of the magic-sets rewriting.

    Attributes:
        program: the rewritten :class:`~repro.datalog.ast.Program`
            (modified rules + magic rules + seed fact).
        query_predicate: adorned name of the query's predicate — the
            relation holding the answers after evaluation.
        adorned_rule_count / magic_rule_count: rewriting statistics used
            by the benchmarks.
    """

    __slots__ = (
        "program",
        "query_predicate",
        "adorned_rule_count",
        "magic_rule_count",
    )

    def __init__(self, program, query_predicate, adorned, magic):
        self.program = program
        self.query_predicate = query_predicate
        self.adorned_rule_count = adorned
        self.magic_rule_count = magic


def magic_transform(program, query_atom):
    """Rewrite ``program`` for goal-directed evaluation of ``query_atom``.

    Raises:
        DatalogError: if the program uses negation (out of scope) or the
            query predicate is not an IDB predicate.
    """
    if program.has_negation():
        raise DatalogError(
            "magic sets are implemented for positive programs; "
            "stratify the negation away first"
        )
    idb = program.idb_predicates()
    if query_atom.predicate not in idb:
        raise DatalogError(
            "query predicate %r is extensional; no rewriting needed "
            "(match the EDB directly)" % (query_atom.predicate,)
        )

    query_adornment = adornment_of(query_atom)
    adorned_rules = []
    worklist = [(query_atom.predicate, query_adornment)]
    seen = set()
    while worklist:
        predicate, adornment = worklist.pop()
        if (predicate, adornment) in seen:
            continue
        seen.add((predicate, adornment))
        # Program-text facts of an IDB predicate become magic-guarded
        # adorned facts; ``rules_for`` skips bodyless rules, so without
        # this they would vanish from the rewritten program (the
        # differential suite pins this against the naive engine).
        for rule in program.rules:
            if rule.body or rule.head.predicate != predicate:
                continue
            adorned_rules.append(
                Rule(
                    Atom(adorned_name(predicate, adornment), rule.head.terms),
                    (),
                )
            )
        for rule in program.rules_for(predicate):
            bound = {
                t.name
                for t, a in zip(rule.head.terms, adornment)
                if a == "b" and isinstance(t, Variable)
            }
            new_body = []
            for item in rule.body:
                if isinstance(item, Literal) and item.atom.predicate in idb:
                    body_ad = adornment_of(item.atom, bound)
                    worklist.append((item.atom.predicate, body_ad))
                    new_body.append(
                        Literal(
                            Atom(
                                adorned_name(item.atom.predicate, body_ad),
                                item.atom.terms,
                            ),
                            item.positive,
                        )
                    )
                    bound |= item.atom.variables()
                elif isinstance(item, Literal):
                    new_body.append(item)
                    bound |= item.atom.variables()
                else:  # Comparison
                    new_body.append(item)
                    if item.op == "=":
                        left, right = item.left, item.right
                        if isinstance(left, Variable) and isinstance(
                            right, Constant
                        ):
                            bound.add(left.name)
                        elif isinstance(right, Variable) and isinstance(
                            left, Constant
                        ):
                            bound.add(right.name)
            adorned_rules.append(
                Rule(
                    Atom(adorned_name(predicate, adornment), rule.head.terms),
                    new_body,
                )
            )

    # Magic and modified rules.
    out_rules = []
    magic_count = 0
    for rule in adorned_rules:
        predicate, adornment = rule.head.predicate.rsplit(_AD, 1)
        guard = Literal(
            Atom(
                magic_name(predicate, adornment),
                _bound_terms(rule.head, adornment),
            )
        )
        prefix = [guard]
        for item in rule.body:
            if isinstance(item, Literal) and _AD in item.atom.predicate:
                sub_pred, sub_ad = item.atom.predicate.rsplit(_AD, 1)
                magic_head = Atom(
                    magic_name(sub_pred, sub_ad),
                    _bound_terms(item.atom, sub_ad),
                )
                out_rules.append(Rule(magic_head, list(prefix)))
                magic_count += 1
            prefix.append(item)
        out_rules.append(Rule(rule.head, [guard] + list(rule.body)))

    # Seed: the query's own magic fact.
    seed_head = Atom(
        magic_name(query_atom.predicate, query_adornment),
        _bound_terms(query_atom, query_adornment),
    )
    out_rules.append(Rule(seed_head, ()))

    return MagicTransform(
        Program(out_rules),
        adorned_name(query_atom.predicate, query_adornment),
        adorned=len(adorned_rules),
        magic=magic_count,
    )


def match_query(store, query_atom):
    """Tuples in ``store`` matching the query atom's constants and repeats.

    Returns full ground tuples for the atom's predicate.
    """
    answers = set()
    for tup in store.get(query_atom.predicate):
        binding = {}
        ok = True
        for value, term in zip(tup, query_atom.terms):
            if isinstance(term, Constant):
                if value != term.value:
                    ok = False
                    break
            else:
                if binding.setdefault(term.name, value) != value:
                    ok = False
                    break
        if ok:
            answers.add(tup)
    return answers


def magic_evaluate(
    program, edb, query_atom, stats=None, indexed=True, planned=True,
    tracer=NULL_TRACER,
):
    """Answer a query via magic-sets rewriting + semi-naive evaluation.

    The physical knobs (``stats``/``indexed``/``planned``) pass straight
    through to the underlying semi-naive run: magic is a *logical*
    optimization and composes with the indexed store and the join
    planner unchanged.

    Returns:
        The set of ground tuples (full query-predicate tuples) matching
        the query — identical to what
        :func:`~repro.datalog.seminaive.seminaive_evaluate` followed by
        :func:`match_query` returns, but computed goal-directedly.
    """
    with tracer.span("magic_rewrite", query=str(query_atom)) as span:
        transform = magic_transform(program, query_atom)
        span.set(
            adorned_rules=transform.adorned_rule_count,
            magic_rules=transform.magic_rule_count,
        )
    # The rewritten program keeps none of the original text facts, so
    # EDB-predicate facts from the program text must ride along in the
    # base store (IDB text facts travel as magic-guarded adorned facts).
    base = edb.copy() if edb is not None else FactStore()
    idb = program.idb_predicates()
    for predicate, values in program.facts():
        if predicate not in idb:
            base.add(predicate, values)
    store = seminaive_evaluate(
        transform.program, base, stats=stats, indexed=indexed,
        planned=planned, tracer=tracer,
    )
    renamed = Atom(transform.query_predicate, query_atom.terms)
    return match_query(store, renamed)
