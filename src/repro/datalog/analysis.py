"""Static analysis of Datalog programs.

Implements the classical program-analysis toolkit:

* the **predicate dependency graph** (edges body-pred -> head-pred, marked
  positive/negative);
* **strongly connected components** (iterative Tarjan) — the recursive
  cliques that semi-naive evaluation iterates over;
* **stratification** for programs with negation: a level assignment such
  that negative edges strictly ascend, or a
  :class:`~repro.errors.StratificationError` when none exists (negation
  inside a recursive cycle);
* **recursion detection** and linearity classification (used by magic
  sets and by the benchmarks' workload taxonomy).
"""

from __future__ import annotations

from ..errors import StratificationError


class DependencyGraph:
    """Predicate-level dependency graph of a program.

    ``edges[p]`` is the set of predicates whose rules use ``p`` in their
    body... no: we store the conventional direction: an edge ``q -> p``
    when a rule with head ``p`` uses ``q`` in its body (``p`` *depends on*
    ``q``).  ``negative_edges`` holds the ``(q, p)`` pairs where some such
    use is negated.
    """

    __slots__ = ("predicates", "depends_on", "negative_pairs")

    def __init__(self, program):
        self.predicates = set()
        self.depends_on = {}
        self.negative_pairs = set()
        for rule in program:
            head = rule.head.predicate
            self.predicates.add(head)
            self.depends_on.setdefault(head, set())
            for pred, positive in rule.body_predicates():
                self.predicates.add(pred)
                self.depends_on.setdefault(pred, set())
                self.depends_on[head].add(pred)
                if not positive:
                    self.negative_pairs.add((pred, head))

    def dependencies(self, predicate):
        """Predicates that ``predicate``'s rules read (directly)."""
        return set(self.depends_on.get(predicate, ()))

    def uses_negatively(self, used, user):
        """Does some rule for ``user`` negate ``used``?"""
        return (used, user) in self.negative_pairs


def strongly_connected_components(graph):
    """SCCs of a ``{node: {successors}}`` adjacency map (iterative Tarjan).

    Returns a list of frozensets in reverse topological order (every
    component appears before the components that depend on it are *not*
    guaranteed — the classical Tarjan emission order is: a component is
    emitted only after all components it can reach).  Concretely: if a
    depends on b, b's component is emitted first.
    """
    index_counter = [0]
    stack = []
    lowlink = {}
    index = {}
    on_stack = set()
    result = []

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(frozenset(component))
    return result


def predicate_sccs(program):
    """SCCs of the program's predicate dependency graph.

    Emitted dependencies-first: evaluating the components in list order
    respects the program's data flow.
    """
    graph = DependencyGraph(program)
    return strongly_connected_components(graph.depends_on)


def is_recursive(program, predicate=None):
    """Is the program (or one predicate) recursive?

    A predicate is recursive when it belongs to a dependency cycle —
    either a component of size > 1 or a self-loop.
    """
    graph = DependencyGraph(program)
    components = strongly_connected_components(graph.depends_on)
    for component in components:
        cyclic = len(component) > 1 or any(
            node in graph.depends_on.get(node, ()) for node in component
        )
        if not cyclic:
            continue
        if predicate is None or predicate in component:
            return True
    return False


def is_linear(program, predicate):
    """Is every rule for ``predicate`` linear (at most one recursive call)?

    Linearity is with respect to the predicate's own SCC: a rule is linear
    when at most one body literal's predicate lies in the head's component.
    Linear programs admit the simplest magic-set and transitive-closure
    optimizations.
    """
    graph = DependencyGraph(program)
    components = strongly_connected_components(graph.depends_on)
    component_of = {}
    for component in components:
        for node in component:
            component_of[node] = component
    home = component_of.get(predicate, frozenset({predicate}))
    for rule in program.rules_for(predicate):
        recursive_calls = sum(
            1
            for pred, _ in rule.body_predicates()
            if component_of.get(pred) is home or pred == predicate and pred in home
        )
        if recursive_calls > 1:
            return False
    return True


def stratify(program):
    """Compute a stratification of the program.

    Returns:
        A list of strata; each stratum is a sorted list of predicate
        names.  Evaluating strata in order, with negation only ever
        applied to predicates of strictly earlier strata, yields the
        stratified (perfect-model) semantics.

    Raises:
        StratificationError: if some negative dependency lies inside a
            dependency cycle (the program is not stratifiable).
    """
    graph = DependencyGraph(program)
    level = {pred: 0 for pred in graph.predicates}
    n = max(len(graph.predicates), 1)
    # Bellman-Ford-style relaxation: level[head] >= level[body] for
    # positive edges, > for negative edges.  More than n*|edges| rounds of
    # change means a positive-weight (negative-edge) cycle.
    for iteration in range(n * n + 1):
        changed = False
        for head, body_preds in graph.depends_on.items():
            for pred in body_preds:
                required = level[pred] + (
                    1 if graph.uses_negatively(pred, head) else 0
                )
                if level[head] < required:
                    level[head] = required
                    changed = True
        if not changed:
            break
    else:
        pass
    if changed:
        raise StratificationError(
            "program is not stratifiable: negation through recursion"
        )
    if any(lvl > n for lvl in level.values()):
        raise StratificationError(
            "program is not stratifiable: negation through recursion"
        )
    strata = {}
    for pred, lvl in level.items():
        strata.setdefault(lvl, []).append(pred)
    return [sorted(strata[lvl]) for lvl in sorted(strata)]


def is_stratifiable(program):
    """True when :func:`stratify` succeeds."""
    try:
        stratify(program)
    except StratificationError:
        return False
    return True


def rules_by_stratum(program):
    """Group proper rules by the stratum of their head predicate.

    Returns:
        A list of rule lists, parallel to :func:`stratify`'s strata.
        Strata without rules (pure-EDB strata) yield empty lists.
    """
    strata = stratify(program)
    stratum_of = {}
    for i, preds in enumerate(strata):
        for pred in preds:
            stratum_of[pred] = i
    grouped = [[] for _ in strata]
    for rule in program.proper_rules():
        grouped[stratum_of[rule.head.predicate]].append(rule)
    return grouped
