"""Stratified negation: the semantics layer over the evaluation engines.

"DATALOG, and its two main issues of query optimization and negation,
took the field by storm" — this module is the negation half.  The
evaluation machinery for stratified programs lives in the engines (they
all consume :func:`~repro.datalog.analysis.rules_by_stratum`); what lives
here is the *semantics*: the perfect (stratified) model, tools to inspect
it, and the classical closed-world reading of negative facts.
"""

from __future__ import annotations

from .analysis import stratify
from .ast import Atom, Constant
from .facts import FactStore
from .seminaive import seminaive_evaluate


def perfect_model(program, edb=None):
    """The stratified ("perfect") model of a program.

    For stratifiable programs this is the standard semantics: evaluate
    strata bottom-up, treating negation on lower strata as set difference.
    Raises :class:`~repro.errors.StratificationError` otherwise.
    """
    stratify(program)  # raises if not stratifiable
    return seminaive_evaluate(program, edb)


def holds(store, atom):
    """Truth of a ground atom in a model, under the closed-world assumption.

    Args:
        store: a model (a :class:`~repro.datalog.facts.FactStore`).
        atom: a ground :class:`~repro.datalog.ast.Atom`.

    Returns:
        True if the fact is in the model; False otherwise — absence *is*
        falsity under CWA, which is exactly the reading that turned null
        values and incomplete information into deductive databases
        (the paper's §6 lineage).
    """
    values = tuple(
        t.value if isinstance(t, Constant) else _reject_variable(t)
        for t in atom.terms
    )
    return store.contains(atom.predicate, values)


def _reject_variable(term):
    from ..errors import DatalogError

    raise DatalogError("holds() needs a ground atom, found variable %s" % term)


def negative_facts(store, predicate, domain=None):
    """The CWA-negative facts of a predicate: domain^arity minus the model.

    Args:
        store: the model.
        predicate: predicate name (must have at least one positive fact,
            otherwise pass ``domain`` and the arity cannot be inferred).
        domain: iterable of domain values; defaults to the store's active
            domain.

    Returns:
        The set of tuples *not* in the predicate — the explicit content of
        the closed-world assumption.  Exponential in arity by nature; meant
        for the small universes of tests and teaching examples.
    """
    import itertools

    arity = store.arity(predicate)
    if arity is None:
        raise ValueError(
            "cannot infer arity of %r (no positive facts)" % (predicate,)
        )
    if domain is None:
        domain = store.active_domain()
    universe = itertools.product(sorted(domain, key=repr), repeat=arity)
    present = store.get(predicate)
    return {tup for tup in universe if tup not in present}


def complement_program(program, predicate, complement_name, domain_predicate):
    """Rules materializing the CWA complement of a predicate.

    Produces ``complement(X1..Xn) :- dom(X1), ..., dom(Xn), not p(X1..Xn)``
    — the standard encoding that turns the closed-world assumption into a
    stratified program.  Returns the extended program.
    """
    from .ast import Literal, Rule, Variable

    arities = {}
    for rule in program:
        arities[rule.head.predicate] = rule.head.arity
        for item in rule.body:
            if hasattr(item, "atom"):
                arities[item.atom.predicate] = item.atom.arity
    if predicate not in arities:
        raise ValueError("predicate %r not used in program" % (predicate,))
    arity = arities[predicate]
    variables = [Variable("X%d" % i) for i in range(arity)]
    body = [Literal(Atom(domain_predicate, [v])) for v in variables]
    body.append(Literal(Atom(predicate, variables), positive=False))
    rule = Rule(Atom(complement_name, variables), body)
    return program.extend([rule])


def model_difference(left, right):
    """Facts in ``left`` but not in ``right`` (per predicate).

    Handy for comparing the perfect model against alternative semantics
    or engine outputs in tests.
    """
    out = FactStore()
    for predicate in left.predicates():
        for tup in left.get(predicate):
            if not right.contains(predicate, tup):
                out.add(predicate, tup)
    return out
