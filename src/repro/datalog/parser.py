"""Concrete syntax for Datalog programs.

The grammar is the textbook one::

    program   := (rule | fact | query)*
    rule      := atom ":-" body "."
    body      := bodyitem ("," bodyitem)*
    bodyitem  := "not" atom | atom | term cmp term
    fact      := atom "."
    query     := "?-" atom "."
    atom      := predicate "(" term ("," term)* ")" | predicate
    term      := Variable | constant
    cmp       := "=" | "!=" | "<" | "<=" | ">" | ">="

Identifiers starting with an uppercase letter or ``_`` are variables;
lowercase identifiers are symbolic constants (kept as Python strings);
integers, floats, and double-quoted strings are literal constants.
``%`` starts a comment running to end of line.

Example::

    program, queries = parse_program('''
        % transitive closure
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        ?- path(a, X).
    ''')
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .ast import Atom, Comparison, Constant, Literal, Program, Rule, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>%[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<implies>:-)
  | (?P<query>\?-)
  | (?P<op><=|>=|!=|=|<|>|\(|\)|,|\.)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<space>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


def _tokenize(text):
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind in ("space", "comment"):
            continue
        if kind == "bad":
            raise ParseError(
                "unexpected character %r" % match.group(),
                position=match.start(),
                text=text,
            )
        value = match.group()
        if kind == "number":
            value = float(value) if "." in value else int(value)
        elif kind == "string":
            value = value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        tokens.append((kind, value, match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens, text):
        self.tokens = tokens
        self.text = text
        self.index = 0

    def peek(self):
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of program", text=self.text)
        self.index += 1
        return token

    def expect(self, kind, value=None):
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ParseError(
                "expected %s%s, got %r"
                % (kind, " %r" % value if value else "", token[1]),
                position=token[2],
                text=self.text,
            )
        return token

    def accept(self, kind, value=None):
        token = self.peek()
        if token and token[0] == kind and (value is None or token[1] == value):
            self.index += 1
            return token
        return None

    # -- grammar ------------------------------------------------------------

    def parse(self):
        rules = []
        queries = []
        while self.peek() is not None:
            if self.accept("query"):
                queries.append(self.parse_atom())
                self.expect("op", ".")
            else:
                rules.append(self.parse_clause())
        return Program(rules), queries

    def parse_clause(self):
        head = self.parse_atom()
        body = []
        if self.accept("implies"):
            body.append(self.parse_body_item())
            while self.accept("op", ","):
                body.append(self.parse_body_item())
        self.expect("op", ".")
        return Rule(head, body)

    _CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")

    def parse_body_item(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of rule body", text=self.text)
        if token[0] == "name" and token[1] == "not":
            self.next()
            return Literal(self.parse_atom(), positive=False)
        if token[0] == "name":
            # One-token lookahead decides atom vs comparison.
            after = (
                self.tokens[self.index + 1]
                if self.index + 1 < len(self.tokens)
                else None
            )
            if after and after[0] == "op" and after[1] in self._CMP_OPS:
                left = self.parse_term()
                op = self.next()[1]
                right = self.parse_term()
                return Comparison(left, op, right)
            return Literal(self.parse_atom(), positive=True)
        # Literal constants can only start a comparison.
        left = self.parse_term()
        op_token = self.next()
        if op_token[0] != "op" or op_token[1] not in self._CMP_OPS:
            raise ParseError(
                "expected a comparison operator after constant, got %r"
                % (op_token[1],),
                position=op_token[2],
                text=self.text,
            )
        right = self.parse_term()
        return Comparison(left, op_token[1], right)

    def parse_atom(self):
        name = self.expect("name")[1]
        if name == "not":
            raise ParseError(
                "'not' is a keyword, not a predicate", text=self.text
            )
        terms = []
        if self.accept("op", "("):
            terms.append(self.parse_term())
            while self.accept("op", ","):
                terms.append(self.parse_term())
            self.expect("op", ")")
        return Atom(name, terms)

    def parse_term(self):
        token = self.next()
        kind, value, position = token
        if kind in ("number", "string"):
            return Constant(value)
        if kind == "name":
            if value[0].isupper() or value[0] == "_":
                return Variable(value)
            return Constant(value)
        raise ParseError(
            "expected a term, got %r" % (value,), position=position, text=self.text
        )


def parse_program(text):
    """Parse Datalog text into a program and its queries.

    Returns:
        ``(program, queries)`` — the :class:`~repro.datalog.ast.Program`
        and a list of query :class:`~repro.datalog.ast.Atom` objects from
        ``?-`` lines (possibly empty).

    Raises:
        ParseError: on malformed input.
        DatalogError: if a parsed rule is unsafe.
    """
    tokens = _tokenize(text)
    return _Parser(tokens, text).parse()


def parse_rule(text):
    """Parse a single rule or fact (with trailing period)."""
    program, queries = parse_program(text)
    if queries or len(program.rules) != 1:
        raise ParseError("expected exactly one rule, got %r" % (text,))
    return program.rules[0]


def parse_query(text):
    """Parse a single ``?- atom.`` query (the ``?-`` is optional)."""
    stripped = text.strip()
    if not stripped.startswith("?-"):
        stripped = "?- " + stripped
    if not stripped.rstrip().endswith("."):
        stripped = stripped.rstrip() + "."
    program, queries = parse_program(stripped)
    if program.rules or len(queries) != 1:
        raise ParseError("expected exactly one query, got %r" % (text,))
    return queries[0]
