"""Engine statistics: making the physical layer's work observable.

Every Datalog engine accepts an optional :class:`EngineStatistics` and
charges its physical work to it — so claims like "semi-naive with indexes
scans 5x fewer facts" are measured, not anecdotal (the
``test_indexed_store`` benchmark is built on these counters).

Counter semantics (shared by all engines, see ``matching.py``):

* ``facts_scanned`` — tuples iterated out of a fact collection: full
  enumerations of an atom's relation and every tuple read while building
  an index (transient or persistent).  This is the metric the indexed
  store exists to shrink.
* ``index_probes`` — hash lookups into a persistent
  :class:`~repro.datalog.indexing.IndexedFactStore` index (one per
  binding probed).  Probes are O(1) and deliberately *not* counted as
  scans.
* ``index_builds`` — persistent indexes constructed (each one's build
  scan is charged to ``facts_scanned``; incremental maintenance after
  that is free per-fact work, not a rebuild).
* ``tuples_materialized`` — candidate bindings produced by rule-body
  extension (the size of every intermediate join result).
* ``iterations`` — fixpoint rounds, summed across strata (bottom-up) or
  resolution passes (top-down).
* ``rule_firings`` — calls to
  :func:`~repro.datalog.matching.evaluate_rule`.
"""

from __future__ import annotations

#: Counter fields, in display order.
FIELDS = (
    "facts_scanned",
    "index_probes",
    "index_builds",
    "tuples_materialized",
    "iterations",
    "rule_firings",
)


class EngineStatistics:
    """Mutable work counters threaded through one engine run."""

    __slots__ = FIELDS

    def __init__(self, **initial):
        for field in FIELDS:
            setattr(self, field, 0)
        for field, value in initial.items():
            if field not in FIELDS:
                raise TypeError("unknown statistics field %r" % (field,))
            setattr(self, field, value)

    def as_dict(self):
        """Counters as a plain dict (stable field order)."""
        return {field: getattr(self, field) for field in FIELDS}

    def merge(self, other):
        """Add another run's counters into this one; returns self."""
        for field in FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def copy(self):
        snapshot = EngineStatistics()
        for field in FIELDS:
            setattr(snapshot, field, getattr(self, field))
        return snapshot

    def __eq__(self, other):
        if not isinstance(other, EngineStatistics):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self):
        parts = ["%s=%d" % (f, getattr(self, f)) for f in FIELDS]
        return "EngineStatistics(%s)" % ", ".join(parts)

    def format(self):
        """One counter per line, aligned — for benchmark artifacts."""
        width = max(len(f) for f in FIELDS)
        return "\n".join(
            "%s  %d" % (f.ljust(width), getattr(self, f)) for f in FIELDS
        )
