"""Engine statistics: making the physical layer's work observable.

Every Datalog engine accepts an optional :class:`EngineStatistics` and
charges its physical work to it — so claims like "semi-naive with indexes
scans 5x fewer facts" are measured, not anecdotal (the
``test_indexed_store`` benchmark is built on these counters).

Counter semantics (shared by all engines, see ``matching.py``):

* ``facts_scanned`` — tuples iterated out of a fact collection: full
  enumerations of an atom's relation and every tuple read while building
  an index (transient or persistent).  This is the metric the indexed
  store exists to shrink.
* ``index_probes`` — hash lookups into a persistent
  :class:`~repro.datalog.indexing.IndexedFactStore` index (one per
  binding probed).  Probes are O(1) and deliberately *not* counted as
  scans.
* ``index_builds`` — persistent indexes constructed (each one's build
  scan is charged to ``facts_scanned``; incremental maintenance after
  that is free per-fact work, not a rebuild).
* ``tuples_materialized`` — candidate bindings produced by rule-body
  extension (the size of every intermediate join result).
* ``iterations`` — fixpoint rounds, summed across strata (bottom-up) or
  resolution passes (top-down).
* ``rule_firings`` — calls to
  :func:`~repro.datalog.matching.evaluate_rule`.
"""

from __future__ import annotations

import json

#: Counter fields, in display order.
FIELDS = (
    "facts_scanned",
    "index_probes",
    "index_builds",
    "tuples_materialized",
    "iterations",
    "rule_firings",
)


class EngineStatistics:
    """Mutable work counters threaded through one engine run."""

    __slots__ = FIELDS

    def __init__(self, **initial):
        for field in FIELDS:
            setattr(self, field, 0)
        for field, value in initial.items():
            if field not in FIELDS:
                raise TypeError("unknown statistics field %r" % (field,))
            setattr(self, field, value)

    def as_dict(self):
        """Counters as a plain dict (stable field order)."""
        return {field: getattr(self, field) for field in FIELDS}

    def merge(self, other):
        """Add another run's counters into this one; returns self."""
        for field in FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def copy(self):
        snapshot = EngineStatistics()
        for field in FIELDS:
            setattr(snapshot, field, getattr(self, field))
        return snapshot

    def diff(self, before):
        """Counter deltas since the ``before`` snapshot (a new instance).

        The span-attachment primitive: ``snapshot = stats.copy()`` when a
        span opens, ``stats.diff(snapshot)`` when it closes — each span
        carries exactly the work accrued during its lifetime.
        """
        delta = EngineStatistics()
        for field in FIELDS:
            setattr(
                delta, field, getattr(self, field) - getattr(before, field)
            )
        return delta

    def as_json(self):
        """The counters as a JSON object string (stable field order)."""
        return json.dumps(self.as_dict())

    def __eq__(self, other):
        if not isinstance(other, EngineStatistics):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self):
        parts = ["%s=%d" % (f, getattr(self, f)) for f in FIELDS]
        return "EngineStatistics(%s)" % ", ".join(parts)

    def format(self):
        """One counter per line, aligned — for benchmark artifacts.

        Delegates to :meth:`as_dict`, so the text, JSON, and dict views
        always agree on fields and order.
        """
        counters = self.as_dict()
        width = max(len(field) for field in counters)
        return "\n".join(
            "%s  %d" % (field.ljust(width), value)
            for field, value in counters.items()
        )
