"""Unified Datalog engine facade.

One object, four strategies — the "experiments" surface for the paper's
logic-database era.  The facade also bridges the relational substrate:
EDBs can be loaded from :class:`~repro.relational.database.Database`
instances and results exported back.

Example::

    engine = DatalogEngine.from_source('''
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- edge(X, Y), path(Y, Z).
    ''', edb={"edge": [(1, 2), (2, 3)]})
    engine.query("path(1, X)")                 # semi-naive by default
    engine.query("path(1, X)", strategy="magic")
"""

from __future__ import annotations

from ..errors import DatalogError
from ..obs.trace import ensure_tracer
from .ast import Atom, Program
from .facts import FactStore
from .lowering import is_lowerable, lowered_evaluate
from .magic import magic_evaluate, match_query
from .naive import naive_evaluate
from .parser import parse_program, parse_query
from .seminaive import seminaive_evaluate
from .topdown import topdown_query

#: Strategy names accepted by :meth:`DatalogEngine.evaluate` / ``query``.
STRATEGIES = ("naive", "seminaive", "magic", "topdown")


class DatalogEngine:
    """A program plus an extensional database, evaluable four ways.

    ``indexed`` and ``planned`` select the physical configuration shared
    by every strategy (persistent hash indexes and the greedy join-order
    planner, both on by default); the defaults reproduce the seed's
    *semantics* while changing its physical plan.  ``executor`` routes
    *non-recursive* programs through the shared relational pipeline
    (lowered to algebra plans, run on the streaming executor) for the
    bottom-up strategies; recursive programs always use the fixpoint
    machinery, and ``executor=False`` forces it everywhere.

    ``kernel_cache`` attaches a :class:`~repro.compile.KernelCache`:
    each lowered predicate plan then runs as a fused compiled kernel
    when the generator supports it, interpreted otherwise (the cache
    counts the fallbacks).

    ``parallel`` attaches a :class:`~repro.parallel.ParallelBackend`:
    recursive programs evaluated semi-naively then shard each large
    round's delta across the backend's worker pool (small strata and
    rounds stay serial under the backend's cost gates).
    """

    def __init__(self, program, edb=None, indexed=True, planned=True,
                 executor=True, tracer=None, parallel=None,
                 kernel_cache=None):
        if not isinstance(program, Program):
            raise DatalogError("expected a Program, got %r" % (program,))
        self.program = program
        self.indexed = indexed
        self.planned = planned
        self.executor = executor
        self.parallel = parallel
        self.kernel_cache = kernel_cache
        self.tracer = ensure_tracer(tracer)
        if edb is None:
            self.edb = FactStore()
        elif isinstance(edb, FactStore):
            self.edb = edb
        elif isinstance(edb, dict):
            self.edb = FactStore(edb)
        else:
            self.edb = FactStore.from_database(edb)
        self._model_cache = {}

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_source(cls, source, edb=None, indexed=True, planned=True,
                    executor=True, tracer=None, parallel=None):
        """Parse program text (ignoring any ``?-`` lines) and wrap it."""
        program, _ = parse_program(source)
        return cls(
            program, edb, indexed=indexed, planned=planned,
            executor=executor, tracer=tracer, parallel=parallel,
        )

    # -- full evaluation ------------------------------------------------------

    def evaluate(self, strategy="seminaive", stats=None):
        """Compute the full minimal model with the given strategy.

        ``magic`` and ``topdown`` are query-directed and have no
        "evaluate everything" mode; asking for them here raises.

        Args:
            strategy: ``"naive"`` or ``"seminaive"``.
            stats: optional
                :class:`~repro.datalog.stats.EngineStatistics` collecting
                work counters.  Passing one bypasses the model cache (a
                cached model has no work to count).  An enabled engine
                tracer bypasses it too, for the same reason: a cache hit
                would emit no spans.

        Returns:
            The model as a :class:`~repro.datalog.facts.FactStore`.
        """
        if strategy == "naive":
            evaluator = naive_evaluate
        elif strategy == "seminaive":
            evaluator = seminaive_evaluate
        elif strategy in ("magic", "topdown"):
            raise DatalogError(
                "%s is query-directed; use .query(...) instead" % strategy
            )
        else:
            raise DatalogError(
                "unknown strategy %r (use one of %s)"
                % (strategy, ", ".join(STRATEGIES))
            )
        extra = {}
        if self.parallel is not None and strategy == "seminaive":
            extra["backend"] = self.parallel
        observed = stats is not None or self.tracer.enabled
        if self.executor and is_lowerable(self.program):
            # Non-recursive: one pass through the relational pipeline is
            # the whole fixpoint, whatever bottom-up strategy was asked
            # for.  Recursion falls through to the iterating engines.
            if observed:
                return lowered_evaluate(
                    self.program, self.edb, stats=stats, tracer=self.tracer,
                    kernel_cache=self.kernel_cache,
                )
            if "plan" not in self._model_cache:
                self._model_cache["plan"] = lowered_evaluate(
                    self.program, self.edb,
                    kernel_cache=self.kernel_cache,
                )
            return self._model_cache["plan"]
        if observed:
            return evaluator(
                self.program,
                self.edb,
                stats=stats,
                indexed=self.indexed,
                planned=self.planned,
                tracer=self.tracer,
                **extra,
            )
        if strategy not in self._model_cache:
            self._model_cache[strategy] = evaluator(
                self.program,
                self.edb,
                indexed=self.indexed,
                planned=self.planned,
                **extra,
            )
        return self._model_cache[strategy]

    # -- queries ---------------------------------------------------------------

    def query(self, query_atom, strategy="seminaive", stats=None):
        """Answer one query atom.

        Args:
            query_atom: an :class:`~repro.datalog.ast.Atom` or query text
                like ``"path(1, X)"``.
            strategy: one of :data:`STRATEGIES`.
            stats: optional
                :class:`~repro.datalog.stats.EngineStatistics`.

        Returns:
            A set of ground tuples of the query predicate matching the
            atom's constants (and repeated variables).
        """
        if isinstance(query_atom, str):
            query_atom = parse_query(query_atom)
        if not isinstance(query_atom, Atom):
            raise DatalogError("expected an Atom or text, got %r" % (query_atom,))
        if strategy in ("naive", "seminaive"):
            store = self.evaluate(strategy, stats=stats)
            return match_query(store, query_atom)
        if strategy == "magic":
            if query_atom.predicate not in self.program.idb_predicates():
                return match_query(self._edb_with_facts(), query_atom)
            return magic_evaluate(
                self.program,
                self.edb,
                query_atom,
                stats=stats,
                indexed=self.indexed,
                planned=self.planned,
                tracer=self.tracer,
            )
        if strategy == "topdown":
            return topdown_query(
                self.program,
                self.edb,
                query_atom,
                stats=stats,
                indexed=self.indexed,
                planned=self.planned,
                tracer=self.tracer,
            )
        raise DatalogError(
            "unknown strategy %r (use one of %s)"
            % (strategy, ", ".join(STRATEGIES))
        )

    def _edb_with_facts(self):
        store = self.edb.copy()
        for predicate, values in self.program.facts():
            store.add(predicate, values)
        return store

    # -- export -----------------------------------------------------------------

    def to_database(self, strategy="seminaive", attribute_names=None):
        """Evaluate and export the model as a relational Database."""
        return self.evaluate(strategy).to_database(attribute_names)

    def __repr__(self):
        return "DatalogEngine(%d rules, %d EDB facts)" % (
            len(self.program),
            self.edb.count(),
        )


def cross_check(
    program, edb, query_atom, strategies=STRATEGIES, indexed=True,
    planned=True, executor=True
):
    """Answer the same query under several strategies; return the results.

    The integration tests use this to assert all engines agree — the
    library's own Berkeley–IBM-style experiment.  ``indexed``/``planned``/
    ``executor`` select the physical configuration, so the differential
    suite can run the comparison both with and without the new machinery.
    """
    engine = DatalogEngine(
        program, edb, indexed=indexed, planned=planned, executor=executor
    )
    if isinstance(query_atom, str):
        query_atom = parse_query(query_atom)
    return {
        strategy: engine.query(query_atom, strategy=strategy)
        for strategy in strategies
    }
