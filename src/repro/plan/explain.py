"""EXPLAIN ANALYZE: run a plan and annotate every physical operator.

The instrumented twin of :func:`~repro.plan.executor.execute_physical`:
:func:`run_explained` builds the physical plan, gives *every operator
its own* :class:`~repro.datalog.stats.EngineStatistics` (so probe/scan/
build/buffer work is attributed exactly, not pooled), and wraps each
operator's pull generator with a timing probe counting rows out and
wall-clock time spent inside ``next()``.  Timing is *inclusive* — an
operator's elapsed time contains its children's, like the "actual time"
column of a conventional EXPLAIN ANALYZE — so a parent's time is always
at least each child's.

The result is an :class:`ExplainResult`: the query answer plus an
:class:`OpReport` tree (rows, elapsed, per-operator counters, peak
buffer) that renders as an indented EXPLAIN tree, exports as a dict,
and mirrors into a :class:`~repro.obs.trace.Tracer` as nested spans.
Running explained returns exactly the same relation as running plain
(the differential suite pins this on the random-algebra generator).

Zero-cost-when-off holds trivially here: nothing in this module runs
unless the caller asked for an explained execution.
"""

from __future__ import annotations

import time

from ..datalog.stats import EngineStatistics
from ..obs.trace import NULL_TRACER
from ..relational.relation import Relation
from .physical import Tally, _BuiltIndex, build_physical


class OpReport:
    """One operator's annotated EXPLAIN node."""

    __slots__ = ("label", "rows", "elapsed", "stats", "peak_buffer",
                 "children", "est_rows")

    def __init__(self, label):
        self.label = label
        self.rows = 0
        self.elapsed = 0.0
        self.stats = EngineStatistics()
        self.peak_buffer = 0
        self.children = []
        self.est_rows = None

    def walk(self, depth=0):
        """Yield ``(depth, report)`` pairs, pre-order."""
        yield depth, self
        for child in self.children:
            for pair in child.walk(depth + 1):
                yield pair

    def as_dict(self):
        return {
            "operator": self.label,
            "rows": self.rows,
            "est_rows": self.est_rows,
            "elapsed_ms": self.elapsed * 1e3,
            "peak_buffer": self.peak_buffer,
            "counters": self.stats.as_dict(),
            "children": [child.as_dict() for child in self.children],
        }

    def _line(self):
        parts = [
            self.label,
            "rows=%d" % self.rows,
            "time=%.3fms" % (self.elapsed * 1e3),
        ]
        if self.est_rows is not None:
            parts.insert(2, "est=%.0f" % self.est_rows)
        counters = self.stats.as_dict()
        for field in ("facts_scanned", "index_probes", "index_builds",
                      "tuples_materialized"):
            if counters[field]:
                parts.append("%s=%d" % (field, counters[field]))
        if self.peak_buffer:
            parts.append("peak=%d" % self.peak_buffer)
        return "  ".join(parts)

    def render(self, indent="  "):
        """The report subtree as an indented EXPLAIN tree."""
        return "\n".join(
            "%s%s" % (indent * depth, report._line())
            for depth, report in self.walk()
        )

    def __repr__(self):
        return "OpReport(%s, rows=%d)" % (self.label, self.rows)


class ExplainResult:
    """What ``explain_analyze`` returns: the answer plus the evidence.

    Attributes:
        result: the query result (a Relation; for explained Datalog
            programs, a FactStore).
        report: the root :class:`OpReport` of the annotated plan tree.
        elapsed: total wall-clock seconds of the instrumented run.
        stats: total :class:`EngineStatistics` (sum over operators plus
            the final result buffer).
        kind: front-end the query arrived through ("sql", "algebra",
            "calculus", "datalog"), when known.
        plan_cache_hit / parse_cache_hit: workbench cache outcomes for
            this run (None when the cache does not apply, e.g. an
            algebra object needs no parse).
        optimizer: the :class:`~repro.opt.OptimizationInfo` of the plan
            that ran — which rules fired, the chosen join method and
            order (None on unoptimized runs).
        kernel: compiled-kernel status of this plan in the workbench's
            :class:`~repro.compile.KernelCache` — a dict with
            ``fingerprint`` and ``status`` ("compiled" with pipeline and
            hit counts, "fallback" with the refusal reason, or "cold");
            None outside the workbench (e.g. explained Datalog).
    """

    __slots__ = ("result", "report", "elapsed", "stats", "kind",
                 "plan_cache_hit", "parse_cache_hit", "optimizer",
                 "kernel")

    def __init__(self, result, report, elapsed, stats, kind=None,
                 plan_cache_hit=None, parse_cache_hit=None, optimizer=None,
                 kernel=None):
        self.result = result
        self.report = report
        self.elapsed = elapsed
        self.stats = stats
        self.kind = kind
        self.plan_cache_hit = plan_cache_hit
        self.parse_cache_hit = parse_cache_hit
        self.optimizer = optimizer
        self.kernel = kernel

    @property
    def relation(self):
        """Alias for relational results (reads like wb.sql(...))."""
        return self.result

    def operators(self):
        """All operator labels, pre-order (tests and quick inspection)."""
        return [report.label for _, report in self.report.walk()]

    def find(self, prefix):
        """All OpReports whose label starts with ``prefix``."""
        return [
            report
            for _, report in self.report.walk()
            if report.label.startswith(prefix)
        ]

    def as_dict(self):
        return {
            "kind": self.kind,
            "rows": self.report.rows,
            "elapsed_ms": self.elapsed * 1e3,
            "plan_cache_hit": self.plan_cache_hit,
            "parse_cache_hit": self.parse_cache_hit,
            "optimizer": (
                self.optimizer.as_dict()
                if self.optimizer is not None
                else None
            ),
            "kernel": self.kernel,
            "totals": self.stats.as_dict(),
            "plan": self.report.as_dict(),
        }

    def render(self):
        """Header plus the indented operator tree (human EXPLAIN view)."""
        caches = []
        if self.plan_cache_hit is not None:
            caches.append(
                "plan_cache=%s" % ("hit" if self.plan_cache_hit else "miss")
            )
        if self.parse_cache_hit is not None:
            caches.append(
                "parse_cache=%s" % ("hit" if self.parse_cache_hit else "miss")
            )
        header = "EXPLAIN ANALYZE%s  %d rows in %.3fms%s" % (
            " (%s)" % self.kind if self.kind else "",
            self.report.rows,
            self.elapsed * 1e3,
            ("  [%s]" % " ".join(caches)) if caches else "",
        )
        lines = [header]
        if self.optimizer is not None:
            summary = self.optimizer.summary()
            lines.append("Optimizer: %s" % (summary or "no rules fired"))
        if self.kernel is not None:
            status = self.kernel["status"]
            if status == "compiled":
                detail = "compiled %s (%d pipelines, %d hits)" % (
                    self.kernel["fingerprint"],
                    self.kernel["pipelines"],
                    self.kernel["hits"],
                )
            elif status == "fallback":
                detail = "fallback (%s)" % self.kernel["reason"]
            else:
                detail = "cold (not compiled yet)"
            lines.append("Kernel: %s" % detail)
        lines.append(self.report.render())
        return "\n".join(lines)

    def __repr__(self):
        return "ExplainResult(%s, rows=%d, %.3fms)" % (
            self.kind, self.report.rows, self.elapsed * 1e3
        )


class _Probe:
    """Wraps a physical operator: times ``next()`` calls, counts rows.

    Exposes just what consumers touch at runtime (``schema`` and
    ``tuples``), so it can stand in for the operator inside any parent.
    """

    __slots__ = ("op", "report")

    def __init__(self, op, report):
        self.op = op
        self.report = report

    @property
    def schema(self):
        return self.op.schema

    def describe(self):
        return self.op.describe()

    def tuples(self):
        report = self.report
        clock = time.perf_counter
        iterator = self.op.tuples()
        while True:
            started = clock()
            try:
                item = next(iterator)
            except StopIteration:
                report.elapsed += clock() - started
                return
            report.elapsed += clock() - started
            report.rows += 1
            yield item


def instrument(root):
    """Attach per-operator accounting to a built physical plan.

    Every operator (and its index helper, if any) is re-bound to a
    private :class:`Tally`, and every child edge is replaced with a
    :class:`_Probe`.  Returns ``(report_root, probe_root, pairs)`` where
    ``pairs`` maps each operator to its report (for post-run peaks).
    """
    pairs = []

    def visit(op):
        report = OpReport(op.label())
        op.tally = Tally(report.stats)
        pairs.append((op, report))
        wrapped = {}
        for slot in op.child_slots:
            child = getattr(op, slot)
            if id(child) in wrapped:
                setattr(op, slot, wrapped[id(child)])
                continue
            child_report, probe = visit(child)
            report.children.append(child_report)
            setattr(op, slot, probe)
            wrapped[id(child)] = probe
        index = getattr(op, "_index", None)
        if index is not None:
            # Index-build work (base-index first builds, hash-table
            # builds) is charged to the operator that owns the index.
            index.tally = op.tally
            if isinstance(index, _BuiltIndex):
                probe = wrapped.get(id(index.child))
                if probe is None:
                    child_report, probe = visit(index.child)
                    report.children.append(child_report)
                index.child = probe
        return report, _Probe(op, report)

    report, probe = visit(root)
    return report, probe, pairs


def run_explained(plan, db, stats=None, tracer=NULL_TRACER, kind=None):
    """Execute an already-canonical plan with full instrumentation.

    Produces the same relation as
    :func:`~repro.plan.executor.execute_physical` (same schema, same
    tuples) while attributing rows, time, and counters per operator.

    Args:
        plan: a canonical algebra expression.
        db: the database to run over.
        stats: optional session-level EngineStatistics; the run's total
            work is merged into it, so an explained run charges the same
            counters a plain run would.
        tracer: optional tracer; the finished report tree is mirrored
            into it as nested ``op:`` spans under an ``execute`` span.
        kind: front-end label recorded on the result.

    Returns:
        An :class:`ExplainResult`.
    """
    root = build_physical(plan, db, Tally(EngineStatistics()))
    report, probe, pairs = instrument(root)

    # The final result set is a buffer like any other; charge it to a
    # synthetic Result node so the tree accounts for every tuple held.
    result_report = OpReport("Result")
    result_report.children.append(report)
    result_tally = Tally(result_report.stats)
    clock = time.perf_counter
    started = clock()
    out = set()
    for item in probe.tuples():
        if item not in out:
            out.add(item)
            result_tally.buffered(len(out))
    elapsed = clock() - started
    result_report.rows = len(out)
    result_report.elapsed = elapsed

    for op, op_report in pairs:
        op_report.peak_buffer = op.tally.peak_buffer
    result_report.peak_buffer = result_tally.peak_buffer

    totals = EngineStatistics()
    for _, op_report in result_report.walk():
        totals.merge(op_report.stats)
    if stats is not None:
        stats.merge(totals)

    relation = Relation(root.schema, out, validate=False)
    result = ExplainResult(
        relation, result_report, elapsed, totals, kind=kind
    )
    if tracer.enabled:
        emit_spans(tracer, result_report, kind=kind)
    return result


def annotate_estimates(report, plan, db, cost_model):
    """Attach estimated cardinalities (``est=``) to an OpReport tree.

    Pairs the physical report tree with the logical plan it was built
    from: operator reports list their input reports in the same order
    the logical node lists its children, with one systematic exception —
    a hash join probing a base relation's cached index has no report
    child for the right side (no operator ran there), which the
    order-preserving prefix zip below handles by simply not annotating
    it.  Estimates come from the shared :mod:`repro.opt.cost` model, so
    EXPLAIN shows exactly the numbers the optimizer planned with, next
    to the actual rows the run produced.
    """
    def visit(op_report, expr):
        try:
            op_report.est_rows = cost_model.rows(expr, db)
        except Exception:
            return
        for child_report, child_expr in zip(
            op_report.children, expr.children()
        ):
            visit(child_report, child_expr)

    if report.label == "Result" and report.children:
        try:
            report.est_rows = cost_model.rows(plan, db)
        except Exception:
            pass
        visit(report.children[0], plan)
    else:
        visit(report, plan)


def emit_spans(tracer, report, kind=None):
    """Mirror a finished OpReport tree into the tracer as nested spans."""
    with tracer.span("execute", kind=kind) as root_span:
        _emit(tracer, report)
    root_span.elapsed = report.elapsed


def _emit(tracer, report):
    span = tracer.begin("op:%s" % report.label, rows=report.rows)
    if report.peak_buffer:
        span.set(peak_buffer=report.peak_buffer)
    for child in report.children:
        _emit(tracer, child)
    tracer.end(span)
    # The probes measured real time and counters; the mirror span's own
    # clock only saw the mirroring, so overwrite with the measurements.
    span.elapsed = report.elapsed
    counters = report.stats.as_dict()
    if any(counters.values()):
        span.counters = counters


def explain_datalog(program, edb=None, stats=None, tracer=NULL_TRACER):
    """EXPLAIN ANALYZE a non-recursive Datalog program, predicate by
    predicate.

    Mirrors :func:`~repro.datalog.lowering.lowered_evaluate` — same
    store-building, same dependency order, same answers — but each
    predicate's algebra plan runs instrumented, and the per-predicate
    trees are collected under one ``Program`` root report.

    Returns:
        An :class:`ExplainResult` whose ``result`` is the derived
        :class:`~repro.datalog.facts.FactStore` (EDB + IDB), and whose
        report tree has one ``Datalog(predicate)`` child per lowered
        predicate.

    Raises:
        DatalogError: for recursive programs (not lowerable).
    """
    from ..datalog.facts import FactStore
    from ..datalog.lowering import (
        _columns,
        _program_arities,
        lower_program,
    )
    from ..relational.database import Database
    from ..relational.schema import RelationSchema
    from .logical import canonicalize

    store = edb.copy() if edb is not None else FactStore()
    for predicate, values in program.facts():
        store.add(predicate, values)

    arities = _program_arities(program)
    for predicate in store.predicates():
        tuples = store.get(predicate)
        if tuples:
            arities.setdefault(predicate, len(next(iter(tuples))))

    db = Database()
    for predicate, arity in sorted(arities.items()):
        # system=True: the scratch EDB may hold sys_ snapshots.
        db.add(
            Relation(
                RelationSchema(predicate, _columns(arity)),
                store.get(predicate),
                validate=False,
            ),
            system=True,
        )

    root = OpReport("Program")
    totals = EngineStatistics()
    elapsed = 0.0
    db_schema = db.schema()
    with tracer.span("datalog_program") as program_span:
        for predicate, expr in lower_program(program):
            plan = canonicalize(expr, db_schema)
            sub = run_explained(
                plan, db, tracer=tracer, kind="datalog"
            )
            predicate_report = OpReport("Datalog(%s)" % predicate)
            predicate_report.rows = len(sub.result)
            predicate_report.elapsed = sub.elapsed
            predicate_report.children.append(sub.report)
            root.children.append(predicate_report)
            totals.merge(sub.stats)
            elapsed += sub.elapsed
            store.add_all(predicate, sub.result.tuples)
            db.replace(
                Relation(
                    db[predicate].schema, store.get(predicate), validate=False
                ),
                system=True,
            )
        program_span.set(predicates=len(root.children))
    root.rows = store.count()
    root.elapsed = elapsed
    if stats is not None:
        stats.merge(totals)
    return ExplainResult(store, root, elapsed, totals, kind="datalog")
