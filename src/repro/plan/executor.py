"""The pull-based executor and the tree-walk work meter.

:func:`execute` runs any algebra expression through the full pipeline —
canonicalize, select physical operators, pull the root — and returns a
:class:`~repro.relational.relation.Relation` identical to what the
legacy tree-walk :func:`~repro.relational.algebra.evaluate` produces
(same attribute order, same tuples).  Work is charged to an optional
:class:`~repro.datalog.stats.EngineStatistics`.

:func:`measure_treewalk` runs the *legacy* evaluator under the same
counters: every non-leaf node's fully-materialized result is charged to
``tuples_materialized``, and the largest single node result is the peak.
That is the honest cost model of a materialize-everything tree walk, and
it is what the pipeline benchmark compares the streaming executor
against.
"""

from __future__ import annotations

from ..datalog.stats import EngineStatistics
from ..relational import algebra as ra
from ..relational.relation import Relation
from .logical import canonicalize
from .physical import Tally, build_physical


def execute_physical(expr, db, stats=None):
    """Run an already-canonical plan; return ``(relation, tally)``.

    The final result set counts toward ``tuples_materialized`` (it is a
    buffer like any other), symmetric with :func:`measure_treewalk`,
    which charges the root node's result too.
    """
    tally = Tally(stats if stats is not None else EngineStatistics())
    root = build_physical(expr, db, tally)
    out = set()
    for t in root.tuples():
        if t not in out:
            out.add(t)
            tally.buffered(len(out))
    return Relation(root.schema, out, validate=False), tally


def execute(expr, db, stats=None):
    """Compile ``expr`` through the pipeline and run it over ``db``."""
    canonical = canonicalize(expr, db.schema())
    relation, _ = execute_physical(canonical, db, stats)
    return relation


def measure_treewalk(expr, db):
    """Legacy tree-walk evaluation with work accounting.

    Returns ``(relation, stats, peak)`` where ``stats`` charges every
    non-leaf node's materialized result size to ``tuples_materialized``
    and ``peak`` is the largest single intermediate.
    """
    stats = EngineStatistics()
    peak = [0]

    def counting(node, database):
        result = ra.dispatch(node, database, counting)
        if not isinstance(node, (ra.RelationRef, ra.ConstantRelation)):
            size = len(result)
            stats.tuples_materialized += size
            if size > peak[0]:
                peak[0] = size
        return result

    result = counting(expr, db)
    return result, stats, peak[0]
