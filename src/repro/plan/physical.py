"""Physical operators: the streaming Volcano-style layer.

Each operator exposes ``schema`` (computed at plan-build time, no data
touched) and ``tuples()`` — a generator that pulls from its children on
demand.  Work is charged to a :class:`Tally`, which wraps an
:class:`~repro.datalog.stats.EngineStatistics` (the same counters the
Datalog engines use) and tracks the largest single operator buffer:

* ``facts_scanned`` — tuples enumerated out of a stored relation
  (scans and index-build passes);
* ``index_probes`` — hash lookups, whether into a
  :class:`~repro.relational.relation.Relation`'s cached key index or an
  operator-built hash table;
* ``index_builds`` — hash tables/key indexes constructed;
* ``tuples_materialized`` — tuples *buffered* by an operator (hash-join
  build sides, dedup sets, set-operation right sides, the final result)
  — streamed-through tuples are free, which is the executor's whole
  point.

Physical operator selection (:func:`build_physical`) maps each canonical
logical node to an operator; when a join's right input is a base
relation, the join probes the relation's cached
:meth:`~repro.relational.relation.Relation._key_index` instead of
building its own table, so repeated queries share build work.

Hot loops batch their accounting: scans and probes accumulate a local
pending count and flush it to the Tally every :data:`_FLUSH_BLOCK`
tuples (and unconditionally when the generator finishes or is closed),
so the per-tuple cost is an integer increment instead of an attribute
walk plus a method call.  Final counter values are *exactly* what
per-tuple charging would produce — only the flush granularity changes —
which the compiled-executor parity suite relies on.  ``buffered`` stays
per-tuple because the peak tracker needs every intermediate size.
"""

from __future__ import annotations

from ..errors import PlanError
from ..relational import algebra as ra
from ..relational.relation import Relation

#: Hot-loop accounting flush granularity (tuples per Tally update).
_FLUSH_BLOCK = 256

# ---------------------------------------------------------------------------
# Work accounting
# ---------------------------------------------------------------------------


class Tally:
    """Executor work counters: an EngineStatistics plus buffer peaks."""

    __slots__ = ("stats", "peak_buffer")

    def __init__(self, stats):
        self.stats = stats
        self.peak_buffer = 0

    def scanned(self, count=1):
        self.stats.facts_scanned += count

    def probed(self, count=1):
        self.stats.index_probes += count

    def built(self):
        self.stats.index_builds += 1

    def buffered(self, buffer_size):
        """One tuple entered an operator buffer now holding buffer_size."""
        self.stats.tuples_materialized += 1
        if buffer_size > self.peak_buffer:
            self.peak_buffer = buffer_size


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class PhysicalOp:
    """Base class: a schema plus a pull-based tuple generator."""

    __slots__ = ("schema", "tally")

    #: Names of the slots holding child operators, in plan order.  The
    #: EXPLAIN ANALYZE layer walks (and re-binds) children through this,
    #: so it must list every slot an operator pulls tuples from.
    child_slots = ()

    def __init_subclass__(cls, **kwargs):
        # Physical operators are allocated per plan node on every query;
        # an accidental __dict__ (from a subclass forgetting __slots__)
        # would silently cost memory and attribute-lookup time on the
        # hot path, so make the omission a loud import-time error.
        super().__init_subclass__(**kwargs)
        if "__slots__" not in cls.__dict__:
            raise TypeError(
                "%s must define __slots__ (PhysicalOp subclasses are "
                "slotted for per-tuple efficiency)" % cls.__name__
            )

    def tuples(self):
        raise NotImplementedError

    def children(self):
        """Child operators, in plan order."""
        return tuple(getattr(self, slot) for slot in self.child_slots)

    def label(self):
        """Short node label (non-recursive; EXPLAIN tree lines)."""
        return type(self).__name__.lstrip("_")

    def describe(self):
        """One-line operator tree rendering (for tests and EXPLAIN)."""
        return type(self).__name__.lstrip("_")


class Scan(PhysicalOp):
    """Enumerate a stored relation (base or literal)."""

    __slots__ = ("relation",)

    def __init__(self, relation, tally):
        self.relation = relation
        self.schema = relation.schema
        self.tally = tally

    def tuples(self):
        tally = self.tally
        pending = 0
        try:
            for t in self.relation.tuples:
                pending += 1
                if pending == _FLUSH_BLOCK:
                    tally.scanned(pending)
                    pending = 0
                yield t
        finally:
            if pending:
                tally.scanned(pending)

    def label(self):
        return "Scan(%s)" % self.relation.schema.name

    def describe(self):
        return "Scan(%s)" % self.relation.schema.name


class Select(PhysicalOp):
    """Streaming filter; nothing buffered."""

    __slots__ = ("child", "condition", "_test")

    child_slots = ("child",)

    def __init__(self, child, condition, tally):
        self.child = child
        self.condition = condition
        self.schema = child.schema
        self._test = condition.compile(child.schema)
        self.tally = tally

    def tuples(self):
        test = self._test
        for t in self.child.tuples():
            if test(t):
                yield t

    def label(self):
        return "Select[%s]" % (self.condition,)

    def describe(self):
        return "Select[%s](%s)" % (self.condition, self.child.describe())


class Project(PhysicalOp):
    """Streaming projection; buffers only the emitted (distinct) tuples."""

    __slots__ = ("child", "attributes", "_positions")

    child_slots = ("child",)

    def __init__(self, child, attributes, tally):
        self.child = child
        self.attributes = tuple(attributes)
        self._positions = [child.schema.position(a) for a in self.attributes]
        self.schema = child.schema.project(self.attributes)
        self.tally = tally

    def tuples(self):
        positions = self._positions
        seen = set()
        for t in self.child.tuples():
            out = tuple(t[p] for p in positions)
            if out not in seen:
                seen.add(out)
                self.tally.buffered(len(seen))
                yield out

    def label(self):
        return "Project[%s]" % ",".join(self.attributes)

    def describe(self):
        return "Project[%s](%s)" % (
            ",".join(self.attributes),
            self.child.describe(),
        )


class RenameOp(PhysicalOp):
    """Pure schema change; tuples pass through untouched."""

    __slots__ = ("child", "mapping")

    child_slots = ("child",)

    def __init__(self, child, mapping, tally):
        self.child = child
        self.mapping = dict(mapping)
        self.schema = child.schema.rename(self.mapping)
        self.tally = tally

    def tuples(self):
        return self.child.tuples()

    def describe(self):
        return "Rename(%s)" % self.child.describe()


class _BaseIndex:
    """Probe handle over a base Relation's cached key index."""

    __slots__ = ("relation", "positions", "tally")

    def __init__(self, relation, positions, tally):
        self.relation = relation
        self.positions = tuple(positions)
        self.tally = tally

    def mapping(self):
        cached = self.positions in set(self.relation.cached_index_patterns())
        index = self.relation._key_index(self.positions)
        if not cached:
            # First use builds the index with one pass over the relation;
            # later queries (and the legacy evaluator) reuse it for free.
            self.tally.built()
            self.tally.scanned(len(self.relation))
        return index


class _BuiltIndex:
    """Hash table built by draining a child operator once."""

    __slots__ = ("child", "positions", "tally")

    def __init__(self, child, positions, tally):
        self.child = child
        self.positions = tuple(positions)
        self.tally = tally

    def mapping(self):
        index = {}
        self.tally.built()
        count = 0
        for t in self.child.tuples():
            key = tuple(t[p] for p in self.positions)
            index.setdefault(key, []).append(t)
            count += 1
            self.tally.buffered(count)
        return index


class HashJoin(PhysicalOp):
    """Natural join: stream the left input, probe a right-side hash index.

    The right side is either a base relation (probe its cached key
    index) or any operator (drain it once into a build table).  Output
    column order matches :meth:`Relation.natural_join`: left attributes,
    then the right side's new ones.
    """

    __slots__ = ("left", "_index", "_left_positions", "_extra_positions")

    child_slots = ("left",)

    def __init__(self, left, right_schema, index, tally):
        self.left = left
        shared = left.schema.shared_attributes(right_schema)
        self.schema = left.schema.join_schema(right_schema)
        self._left_positions = [left.schema.position(a) for a in shared]
        self._extra_positions = [
            right_schema.position(a)
            for a in right_schema.attributes
            if a not in left.schema
        ]
        self._index = index
        self.tally = tally

    def tuples(self):
        index = self._index.mapping()
        left_positions = self._left_positions
        extra_positions = self._extra_positions
        tally = self.tally
        pending = 0
        try:
            for s in self.left.tuples():
                key = tuple(s[p] for p in left_positions)
                pending += 1
                if pending == _FLUSH_BLOCK:
                    tally.probed(pending)
                    pending = 0
                for t in index.get(key, ()):
                    yield s + tuple(t[p] for p in extra_positions)
        finally:
            if pending:
                tally.probed(pending)

    def label(self):
        shared = [
            self.left.schema.attributes[p] for p in self._left_positions
        ]
        side = "base" if isinstance(self._index, _BaseIndex) else "built"
        return "HashJoin:%s[%s]" % (side, ",".join(shared))

    def describe(self):
        return "HashJoin(%s)" % self.left.describe()


class ThetaJoinOp(PhysicalOp):
    """Theta join: hash on cross-side equality conjuncts when present,
    nested loop otherwise — either way the condition filters during
    enumeration, never after a materialized product."""

    __slots__ = (
        "left",
        "right",
        "condition",
        "_left_key_positions",
        "_right_key_positions",
        "_residual",
    )

    child_slots = ("left", "right")

    def __init__(self, left, right, condition, tally):
        self.left = left
        self.right = right
        self.condition = condition
        self.schema = left.schema.concat(right.schema)
        left_attrs = set(left.schema.attributes)
        right_attrs = set(right.schema.attributes)
        equi, residual = _split_equi_conjuncts(
            condition, left_attrs, right_attrs
        )
        self._left_key_positions = [
            left.schema.position(a) for a, _ in equi
        ]
        self._right_key_positions = [
            right.schema.position(b) for _, b in equi
        ]
        self._residual = (
            residual.compile(self.schema) if residual is not None else None
        )
        self.tally = tally

    def tuples(self):
        residual = self._residual
        if self._right_key_positions:
            index = _BuiltIndex(
                self.right, self._right_key_positions, self.tally
            ).mapping()
            left_positions = self._left_key_positions
            tally = self.tally
            pending = 0
            try:
                for s in self.left.tuples():
                    key = tuple(s[p] for p in left_positions)
                    pending += 1
                    if pending == _FLUSH_BLOCK:
                        tally.probed(pending)
                        pending = 0
                    for t in index.get(key, ()):
                        combined = s + t
                        if residual is None or residual(combined):
                            yield combined
            finally:
                if pending:
                    tally.probed(pending)
        else:
            right_tuples = []
            for t in self.right.tuples():
                right_tuples.append(t)
                self.tally.buffered(len(right_tuples))
            for s in self.left.tuples():
                for t in right_tuples:
                    combined = s + t
                    if residual is None or residual(combined):
                        yield combined

    def label(self):
        kind = "hash" if self._right_key_positions else "loop"
        return "ThetaJoin:%s[%s]" % (kind, self.condition)

    def describe(self):
        kind = "hash" if self._right_key_positions else "loop"
        return "ThetaJoin:%s(%s, %s)" % (
            kind,
            self.left.describe(),
            self.right.describe(),
        )


class ProductOp(PhysicalOp):
    """Cartesian product: buffer the right side once, stream the left."""

    __slots__ = ("left", "right")

    child_slots = ("left", "right")

    def __init__(self, left, right, tally):
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)
        self.tally = tally

    def tuples(self):
        right_tuples = []
        for t in self.right.tuples():
            right_tuples.append(t)
            self.tally.buffered(len(right_tuples))
        for s in self.left.tuples():
            for t in right_tuples:
                yield s + t

    def describe(self):
        return "Product(%s, %s)" % (
            self.left.describe(),
            self.right.describe(),
        )


class UnionOp(PhysicalOp):
    """Pipelined union: stream both inputs through one dedup set."""

    __slots__ = ("left", "right")

    child_slots = ("left", "right")

    def __init__(self, left, right, tally):
        left.schema.require_union_compatible(right.schema, "union")
        self.left = left
        self.right = right
        self.schema = left.schema
        self.tally = tally

    def tuples(self):
        seen = set()
        for source in (self.left, self.right):
            for t in source.tuples():
                if t not in seen:
                    seen.add(t)
                    self.tally.buffered(len(seen))
                    yield t

    def describe(self):
        return "Union(%s, %s)" % (self.left.describe(), self.right.describe())


class _RightSetOp(PhysicalOp):
    """Shared shape: buffer the right side as a set, stream the left."""

    __slots__ = ("left", "right")

    child_slots = ("left", "right")

    def __init__(self, left, right, tally, operation):
        left.schema.require_union_compatible(right.schema, operation)
        self.left = left
        self.right = right
        self.schema = left.schema
        self.tally = tally

    def _right_set(self):
        members = set()
        for t in self.right.tuples():
            members.add(t)
            self.tally.buffered(len(members))
        return members

    def label(self):
        return type(self).__name__.rstrip("Op")

    def describe(self):
        return "%s(%s, %s)" % (
            type(self).__name__.rstrip("Op"),
            self.left.describe(),
            self.right.describe(),
        )


class DifferenceOp(_RightSetOp):
    __slots__ = ()

    def __init__(self, left, right, tally):
        super().__init__(left, right, tally, "difference")

    def tuples(self):
        members = self._right_set()
        tally = self.tally
        pending = 0
        try:
            for t in self.left.tuples():
                pending += 1
                if pending == _FLUSH_BLOCK:
                    tally.probed(pending)
                    pending = 0
                if t not in members:
                    yield t
        finally:
            if pending:
                tally.probed(pending)


class IntersectionOp(_RightSetOp):
    __slots__ = ()

    def __init__(self, left, right, tally):
        super().__init__(left, right, tally, "intersection")

    def tuples(self):
        members = self._right_set()
        tally = self.tally
        pending = 0
        try:
            for t in self.left.tuples():
                pending += 1
                if pending == _FLUSH_BLOCK:
                    tally.probed(pending)
                    pending = 0
                if t in members:
                    yield t
        finally:
            if pending:
                tally.probed(pending)


class SemijoinOp(PhysicalOp):
    """Left semijoin/antijoin: probe a key set built from the right.

    Mirrors :meth:`Relation.semijoin`/``antijoin`` exactly, including
    the no-shared-attributes degeneration (right emptiness decides).
    When the right input is a base relation, its cached key index
    serves as the key set.
    """

    __slots__ = ("left", "right", "_index", "_left_positions", "negated")

    child_slots = ("left", "right")

    def __init__(self, left, right, index, tally, negated=False):
        self.left = left
        self.right = right
        shared = left.schema.shared_attributes(right.schema)
        self.schema = left.schema
        self._left_positions = [left.schema.position(a) for a in shared]
        self._index = index  # None when no shared attributes
        self.negated = negated
        self.tally = tally

    def tuples(self):
        if self._index is None:
            right_nonempty = False
            for _ in self.right.tuples():
                right_nonempty = True
                break
            keep_all = right_nonempty != self.negated
            if keep_all:
                for t in self.left.tuples():
                    yield t
            return
        keys = self._index.mapping()
        left_positions = self._left_positions
        negated = self.negated
        tally = self.tally
        pending = 0
        try:
            for t in self.left.tuples():
                pending += 1
                if pending == _FLUSH_BLOCK:
                    tally.probed(pending)
                    pending = 0
                if (tuple(t[p] for p in left_positions) in keys) != negated:
                    yield t
        finally:
            if pending:
                tally.probed(pending)

    def label(self):
        return "Antijoin" if self.negated else "Semijoin"

    def describe(self):
        name = "Antijoin" if self.negated else "Semijoin"
        return "%s(%s)" % (name, self.left.describe())


class DivisionOp(PhysicalOp):
    """Division: materialize both sides, reuse Relation.divide."""

    __slots__ = ("left", "right")

    child_slots = ("left", "right")

    def __init__(self, left, right, tally):
        self.left = left
        self.right = right
        divisor = set(right.schema.attributes)
        self.schema = left.schema.project(
            tuple(a for a in left.schema.attributes if a not in divisor)
        )
        self.tally = tally

    def tuples(self):
        left_rel = _materialize(self.left, self.tally)
        right_rel = _materialize(self.right, self.tally)
        for t in left_rel.divide(right_rel).tuples:
            yield t

    def describe(self):
        return "Division(%s, %s)" % (
            self.left.describe(),
            self.right.describe(),
        )


def _materialize(op, tally):
    out = set()
    for t in op.tuples():
        out.add(t)
        tally.buffered(len(out))
    return Relation(op.schema, out, validate=False)


def _split_equi_conjuncts(condition, left_attrs, right_attrs):
    """Partition a theta condition into hashable cross-side equalities
    and a residual condition (None when fully consumed)."""
    parts = (
        list(condition.parts) if isinstance(condition, ra.And) else [condition]
    )
    equi = []
    residual = []
    for part in parts:
        pair = _cross_equality(part, left_attrs, right_attrs)
        if pair is not None:
            equi.append(pair)
        else:
            residual.append(part)
    if not residual:
        return equi, None
    return equi, residual[0] if len(residual) == 1 else ra.And(*residual)


def _cross_equality(part, left_attrs, right_attrs):
    if (
        isinstance(part, ra.Comparison)
        and part.op == "="
        and isinstance(part.left, ra.Attr)
        and isinstance(part.right, ra.Attr)
    ):
        a, b = part.left.name, part.right.name
        if a in left_attrs and b in right_attrs:
            return (a, b)
        if b in left_attrs and a in right_attrs:
            return (b, a)
    return None


# ---------------------------------------------------------------------------
# Physical operator selection
# ---------------------------------------------------------------------------


def build_physical(expr, db, tally):
    """Select physical operators for a canonical logical plan.

    Args:
        expr: a canonical :class:`~repro.relational.algebra.AlgebraExpr`.
        db: the :class:`~repro.relational.database.Database` to run over.
        tally: the :class:`Tally` all operators charge work to.

    Returns:
        The root :class:`PhysicalOp`.
    """
    if isinstance(expr, ra.RelationRef):
        return Scan(db[expr.name], tally)
    if isinstance(expr, ra.ConstantRelation):
        return Scan(expr.relation, tally)
    if isinstance(expr, ra.Selection):
        return Select(build_physical(expr.child, db, tally), expr.condition, tally)
    if isinstance(expr, ra.Projection):
        return Project(
            build_physical(expr.child, db, tally), expr.attributes, tally
        )
    if isinstance(expr, ra.Rename):
        return RenameOp(build_physical(expr.child, db, tally), expr.mapping, tally)
    if isinstance(expr, ra.NaturalJoin):
        left = build_physical(expr.left, db, tally)
        # No shared attributes degenerates to a product through the
        # single empty-key bucket, exactly like Relation.natural_join.
        if isinstance(expr.right, ra.RelationRef):
            relation = db[expr.right.name]
            schema = relation.schema
            shared = left.schema.shared_attributes(schema)
            positions = tuple(schema.position(a) for a in shared)
            index = _BaseIndex(relation, positions, tally)
        else:
            right = build_physical(expr.right, db, tally)
            schema = right.schema
            shared = left.schema.shared_attributes(schema)
            positions = tuple(schema.position(a) for a in shared)
            index = _BuiltIndex(right, positions, tally)
        return HashJoin(left, schema, index, tally)
    if isinstance(expr, ra.ThetaJoin):
        return ThetaJoinOp(
            build_physical(expr.left, db, tally),
            build_physical(expr.right, db, tally),
            expr.condition,
            tally,
        )
    if isinstance(expr, ra.Product):
        return ProductOp(
            build_physical(expr.left, db, tally),
            build_physical(expr.right, db, tally),
            tally,
        )
    if isinstance(expr, ra.Union):
        return UnionOp(
            build_physical(expr.left, db, tally),
            build_physical(expr.right, db, tally),
            tally,
        )
    if isinstance(expr, ra.Difference):
        return DifferenceOp(
            build_physical(expr.left, db, tally),
            build_physical(expr.right, db, tally),
            tally,
        )
    if isinstance(expr, ra.Intersection):
        return IntersectionOp(
            build_physical(expr.left, db, tally),
            build_physical(expr.right, db, tally),
            tally,
        )
    if isinstance(expr, (ra.Semijoin, ra.Antijoin)):
        left = build_physical(expr.left, db, tally)
        if isinstance(expr.right, ra.RelationRef):
            relation = db[expr.right.name]
            right = Scan(relation, tally)
            shared = left.schema.shared_attributes(relation.schema)
            positions = tuple(relation.schema.position(a) for a in shared)
            index = (
                _BaseIndex(relation, positions, tally) if shared else None
            )
        else:
            right = build_physical(expr.right, db, tally)
            shared = left.schema.shared_attributes(right.schema)
            positions = tuple(right.schema.position(a) for a in shared)
            index = _BuiltIndex(right, positions, tally) if shared else None
        return SemijoinOp(
            left, right, index, tally, negated=isinstance(expr, ra.Antijoin)
        )
    if isinstance(expr, ra.Division):
        return DivisionOp(
            build_physical(expr.left, db, tally),
            build_physical(expr.right, db, tally),
            tally,
        )
    raise PlanError("no physical operator for %r (canonicalize first)" % (expr,))
