"""Logical-plan canonicalization and plan keys.

A *canonical* logical plan is an algebra tree built exclusively from the
core node types of :mod:`repro.relational.algebra`.  Front-ends are free
to emit extension nodes (the SQL frontend defers column resolution, the
Codd translation renames positionally); :func:`canonicalize` resolves
them against a concrete database schema via the ``canonicalize_node``
protocol, so the optimizer and the physical layer only ever see the core
operators.

:func:`plan_key` maps a canonical plan to a hashable structural key —
two queries with the same key are the same logical plan, which is what
the workbench's :class:`~repro.plan.cache.PlanCache` is keyed on.
"""

from __future__ import annotations

from ..errors import PlanError
from ..relational import algebra as ra

#: Core binary set/join operators, tagged for key construction.
_BINARY_TAGS = {
    ra.Product: "product",
    ra.NaturalJoin: "join",
    ra.Semijoin: "semijoin",
    ra.Antijoin: "antijoin",
    ra.Union: "union",
    ra.Difference: "difference",
    ra.Intersection: "intersection",
    ra.Division: "division",
}


def canonicalize(expr, db_schema):
    """Resolve ``expr`` into a canonical (core-operator-only) plan.

    Args:
        expr: any :class:`~repro.relational.algebra.AlgebraExpr`,
            possibly containing front-end extension nodes.
        db_schema: the :class:`~repro.relational.schema.DatabaseSchema`
            the plan will run against (extension nodes need it to
            resolve names).

    Returns:
        An equivalent expression containing only core algebra nodes.

    Raises:
        PlanError: on nodes that neither are core operators nor
            implement ``canonicalize_node``.
    """
    if isinstance(expr, (ra.RelationRef, ra.ConstantRelation)):
        return expr
    if isinstance(expr, ra.Selection):
        return ra.Selection(canonicalize(expr.child, db_schema), expr.condition)
    if isinstance(expr, ra.Projection):
        return ra.Projection(
            canonicalize(expr.child, db_schema), expr.attributes
        )
    if isinstance(expr, ra.Rename):
        return ra.Rename(canonicalize(expr.child, db_schema), expr.mapping)
    if isinstance(expr, ra.ThetaJoin):
        return ra.ThetaJoin(
            canonicalize(expr.left, db_schema),
            canonicalize(expr.right, db_schema),
            expr.condition,
        )
    if type(expr) in _BINARY_TAGS:
        return type(expr)(
            canonicalize(expr.left, db_schema),
            canonicalize(expr.right, db_schema),
        )
    custom = getattr(expr, "canonicalize_node", None)
    if custom is not None:
        return custom(db_schema, lambda e: canonicalize(e, db_schema))
    raise PlanError(
        "cannot canonicalize %r: not a core operator and no "
        "canonicalize_node hook" % (expr,)
    )


def is_canonical(expr):
    """True when the tree contains only core algebra node types."""
    if isinstance(expr, (ra.RelationRef, ra.ConstantRelation)):
        return True
    if isinstance(expr, (ra.Selection, ra.Projection, ra.Rename)):
        return is_canonical(expr.child)
    if isinstance(expr, ra.ThetaJoin) or type(expr) in _BINARY_TAGS:
        return is_canonical(expr.left) and is_canonical(expr.right)
    return False


def plan_key(expr):
    """A hashable structural key for a canonical plan.

    Condition ASTs already define value equality/hashing, so they embed
    directly; relation literals embed as (attributes, tuples).

    Raises:
        PlanError: on non-canonical nodes (canonicalize first).
    """
    if isinstance(expr, ra.RelationRef):
        return ("ref", expr.name)
    if isinstance(expr, ra.ConstantRelation):
        return (
            "const",
            expr.relation.schema.attributes,
            expr.relation.tuples,
        )
    if isinstance(expr, ra.Selection):
        return ("select", expr.condition, plan_key(expr.child))
    if isinstance(expr, ra.Projection):
        return ("project", expr.attributes, plan_key(expr.child))
    if isinstance(expr, ra.Rename):
        return (
            "rename",
            tuple(sorted(expr.mapping.items())),
            plan_key(expr.child),
        )
    if isinstance(expr, ra.ThetaJoin):
        return (
            "theta",
            expr.condition,
            plan_key(expr.left),
            plan_key(expr.right),
        )
    tag = _BINARY_TAGS.get(type(expr))
    if tag is not None:
        return (tag, plan_key(expr.left), plan_key(expr.right))
    raise PlanError("cannot key non-canonical node %r" % (expr,))
