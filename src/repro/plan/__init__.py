"""The shared query-compilation pipeline.

Every relational front-end (SQL, safe calculus via Codd's translation,
raw algebra) and the non-recursive fragment of Datalog compile into one
pipeline:

    front-end  ->  canonical logical plan  ->  optimizer  ->
    physical plan  ->  streaming Volcano-style executor

* :mod:`~repro.plan.logical` — canonicalization: front-end extension
  nodes (SQL's deferred name resolution, the Codd translation's
  positional rename) are resolved into the six-plus-derived core algebra
  operators, and :func:`~repro.plan.logical.plan_key` turns the
  canonical tree into a hashable cache key.
* :mod:`~repro.plan.physical` — physical operator selection: streaming
  select/project/rename, hash natural- and theta-joins that probe
  :class:`~repro.relational.relation.Relation`'s cached key indexes,
  pipelined union/difference/semijoin.  Every operator charges its work
  to an :class:`~repro.datalog.stats.EngineStatistics`.
* :mod:`~repro.plan.executor` — the pull-based executor
  (:func:`~repro.plan.executor.execute`) plus the tree-walk work meter
  (:func:`~repro.plan.executor.measure_treewalk`) used as the
  differential oracle and benchmark baseline.
* :mod:`~repro.plan.cache` — the canonical-plan-keyed plan cache the
  workbench uses to skip parse/optimize on repeated queries.
* :mod:`~repro.plan.explain` — EXPLAIN ANALYZE: the instrumented twin
  of the executor (:func:`~repro.plan.explain.run_explained`), which
  annotates every physical operator with rows, wall-clock time, and
  per-operator counters, and mirrors the finished tree into a
  :class:`~repro.obs.trace.Tracer`.

The legacy materialize-everything tree-walk
(:func:`~repro.relational.algebra.evaluate`) stays available behind
``executor=False`` on every workbench entry point, mirroring the
``indexed=False`` opt-out discipline of the Datalog physical layer.
"""

from .cache import PlanCache
from .executor import execute, execute_physical, measure_treewalk
from .explain import ExplainResult, OpReport, explain_datalog, run_explained
from .logical import canonicalize, is_canonical, plan_key
from .physical import build_physical

__all__ = [
    "ExplainResult",
    "OpReport",
    "PlanCache",
    "build_physical",
    "canonicalize",
    "execute",
    "execute_physical",
    "explain_datalog",
    "is_canonical",
    "measure_treewalk",
    "plan_key",
    "run_explained",
]
