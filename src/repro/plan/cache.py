"""The workbench's plan cache.

Keyed by :func:`~repro.plan.logical.plan_key` of the canonical logical
plan (plus whatever discriminators the caller folds in, e.g. whether the
optimizer ran), so the same query arriving through *different*
front-ends — SQL text, a calculus formula, a hand-built algebra tree —
hits the same cache entry whenever it canonicalizes to the same plan.

Effectiveness is observable: the cache counts hits, misses, and
evictions (:meth:`PlanCache.stats`), and :meth:`PlanCache.publish`
pushes the counts into a :class:`~repro.obs.metrics.MetricsRegistry` so
traces and benchmark artifacts can report cache behavior from the same
source of truth.
"""

from __future__ import annotations


class PlanCache:
    """A bounded FIFO-evicting mapping with hit/miss/eviction counters.

    Hits are counted both in aggregate and *per entry* (``entries()``),
    so the ``sys_plan_cache`` system relation can expose which cached
    plans are actually hot and the query log can join against them by
    :meth:`fingerprint`.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries",
                 "_hits_by_key", "_route_by_key", "_kernel_by_key")

    def __init__(self, capacity=128):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries = {}
        self._hits_by_key = {}
        self._route_by_key = {}
        self._kernel_by_key = {}

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key):
        """The cached value, or None; counts a hit or a miss."""
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        self._hits_by_key[key] += 1
        return entry

    def put(self, key, value):
        if key not in self._entries and len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            del self._hits_by_key[oldest]
            self._route_by_key.pop(oldest, None)
            self._kernel_by_key.pop(oldest, None)
            self.evictions += 1
        self._entries[key] = value
        self._hits_by_key.setdefault(key, 0)

    def note_route(self, key, route, kernel=None):
        """Record which executor route last served this entry.

        ``sys_plan_cache`` exposes it as ``last_route`` ("streaming",
        "compiled", "compiled-fallback", "parallel", ...), so wall-time
        wins are attributable to kernels; ``kernel`` is the serving
        kernel's fingerprint when the route was compiled, joinable
        against ``sys_kernels``.  Unknown keys are ignored (the entry
        may have been evicted between resolve and run).
        """
        if key in self._entries:
            self._route_by_key[key] = route
            if kernel is not None:
                self._kernel_by_key[key] = kernel

    def route_for(self, key):
        """The last recorded route for a key, or None."""
        return self._route_by_key.get(key)

    @staticmethod
    def fingerprint(key):
        """A short joinable hash of a cache key.

        Stable within a process (it derives from ``hash()``), which is
        exactly the lifetime of the cache it names.
        """
        return "%012x" % (hash(key) & 0xFFFFFFFFFFFF)

    def entries(self):
        """``(index, key, hits, last_route, kernel_fingerprint)`` per
        live entry, in insertion order.  ``last_route`` is None until a
        run completes; ``kernel_fingerprint`` until a compiled one does."""
        return [
            (index, key, self._hits_by_key[key],
             self._route_by_key.get(key), self._kernel_by_key.get(key))
            for index, key in enumerate(self._entries)
        ]

    def stats(self):
        """``{"hits", "misses", "evictions", "size"}`` snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }

    def publish(self, registry, name="plan_cache", **labels):
        """Record the current counters into a metrics registry."""
        for field, value in self.stats().items():
            registry.gauge("%s_%s" % (name, field), **labels).set(value)
        return registry

    def invalidate_relations(self, names):
        """Drop exactly the entries whose plans reference ``names``.

        The surgical half of cache coherence: a mutation bumps the
        changed relations' version tokens and the workbench calls this
        with just those names, so plans over untouched relations keep
        their entries (and their hit statistics).  Keys are walked for
        the canonical ``("ref", name)`` leaves of
        :func:`~repro.plan.logical.plan_key`.  Returns the number of
        entries dropped.
        """
        names = set(names)
        if not names:
            return 0
        dropped = 0
        for key in list(self._entries):
            if _references(key, names):
                del self._entries[key]
                del self._hits_by_key[key]
                self._route_by_key.pop(key, None)
                self._kernel_by_key.pop(key, None)
                dropped += 1
        return dropped

    def clear(self):
        """Drop all entries and reset every counter (schema changed)."""
        self._entries.clear()
        self._hits_by_key.clear()
        self._route_by_key.clear()
        self._kernel_by_key.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


def _references(key, names):
    """True when a nested plan key contains ``("ref", name)`` for any of
    ``names`` (conditions and other hashables are opaque leaves)."""
    stack = [key]
    while stack:
        node = stack.pop()
        if isinstance(node, tuple):
            if (
                len(node) == 2
                and node[0] == "ref"
                and isinstance(node[1], str)
            ):
                if node[1] in names:
                    return True
            else:
                stack.extend(node)
    return False


_MISSING = object()
