"""Join enumeration: cost-based ordering and Yannakakis routing.

Two enumeration passes close the optimizer pipeline:

* :func:`route_yannakakis` — when a natural-join tree is *join-connected*
  and its leaf schemas form an **alpha-acyclic** hypergraph, the join is
  rewritten into Yannakakis' semijoin program, expressed purely in core
  algebra (Semijoin / NaturalJoin nodes): a bottom-up semijoin sweep, a
  top-down sweep, then the join phase over fully-reduced inputs.  Because
  a semijoin only ever removes *dangling* tuples (tuples with no partner
  in some other join input), the rewrite is unconditionally
  semantics-preserving; acyclicity is what makes the reduction *complete*
  (the join phase never materializes an intermediate bigger than the
  output — Yannakakis' theorem).  Emitting plain algebra means the
  streaming executor, EXPLAIN, the plan cache, and the partitioner all
  work on routed plans unmodified.

* :func:`order_joins_pass` — remaining join trees are ordered by the
  shared cost model: exact Selinger-style dynamic programming over
  connected sub-plans below :data:`DP_THRESHOLD` leaves, the classical
  greedy pairwise heuristic above it.

Both passes restore the original output column order with a permutation
projection when enumeration changed it (natural joins list left
attributes first, so reordering permutes columns; under set operations
that would break union compatibility — a conformance-fuzzer regression).
"""

from __future__ import annotations

from itertools import combinations

from ..acyclic.gyo import is_alpha_acyclic
from ..acyclic.hypergraph import Hypergraph
from ..acyclic.jointree import JoinTree
from ..errors import HypergraphError
from ..relational import algebra as ra

#: Below this many join leaves, enumeration is exact (Selinger DP).
DP_THRESHOLD = 7


def flatten_joins(expr):
    """The leaves of a maximal natural-join tree, left to right."""
    if isinstance(expr, ra.NaturalJoin):
        return flatten_joins(expr.left) + flatten_joins(expr.right)
    return [expr]


def _leaf_label(leaf):
    """A short human-readable name for a join leaf (EXPLAIN notes)."""
    node = leaf
    while not isinstance(node, ra.RelationRef):
        child = getattr(node, "child", None)
        if child is None:
            child = getattr(node, "left", None)
        if child is None:
            return type(node).__name__
        node = child
    return node.name


def _leaf_schemas(leaves, db_schema):
    """Attribute sets per leaf, or None when any is unresolvable/empty."""
    out = []
    for leaf in leaves:
        try:
            attrs = leaf.schema(db_schema).attributes
        except Exception:
            return None
        if not attrs:
            return None
        out.append(frozenset(attrs))
    return out


def _join_connected(attr_sets):
    """True when the leaves' attribute-sharing graph is connected."""
    n = len(attr_sets)
    seen = {0}
    frontier = [0]
    while frontier:
        i = frontier.pop()
        for j in range(n):
            if j not in seen and attr_sets[i] & attr_sets[j]:
                seen.add(j)
                frontier.append(j)
    return len(seen) == n


# ---------------------------------------------------------------------------
# Yannakakis routing
# ---------------------------------------------------------------------------


def route_yannakakis(expr, ctx):
    """Rewrite acyclic, join-connected natural-join trees into
    Yannakakis semijoin programs.

    Requires at least three leaves (below that the hash join is already
    optimal), a resolvable schema, join-connectivity, and alpha-
    acyclicity of the leaf hypergraph.  Trees that already contain
    semijoin leaves are left alone — that is the signature of an
    already-routed plan, and the guard keeps the rewrite from feeding on
    its own output.

    The check runs *top-down*: a maximal join tree is routed as a whole
    before any of its sub-joins is considered.  Bottom-up order would
    route an inner sub-tree first, leave semijoin leaves behind, and the
    guard above would then exclude the outer relations from the
    reduction (a 4-relation path would reduce only 3 of them).  Only
    when the whole tree does not qualify does the pass descend, so
    smaller qualifying sub-trees still route.
    """
    if isinstance(expr, ra.NaturalJoin) and ctx.db_schema is not None:
        routed = _route_tree(expr, ctx)
        if routed is not expr:
            return routed
    return rebuild_for_joins(expr, lambda e: route_yannakakis(e, ctx))


def _route_tree(expr, ctx):
    """Route one maximal join tree, or return ``expr`` unchanged."""
    leaves = flatten_joins(expr)
    if len(leaves) < 3:
        return expr
    if any(isinstance(leaf, (ra.Semijoin, ra.Antijoin)) for leaf in leaves):
        return expr
    attr_sets = _leaf_schemas(leaves, ctx.db_schema)
    if attr_sets is None or not _join_connected(attr_sets):
        return expr
    names = ["L%d" % i for i in range(len(leaves))]
    try:
        hypergraph = Hypergraph(dict(zip(names, attr_sets)))
    except HypergraphError:
        return expr
    if not is_alpha_acyclic(hypergraph):
        return expr
    tree = JoinTree.build(hypergraph)
    if len(tree.roots()) != 1:
        return expr
    if not _routing_pays(expr, leaves, ctx):
        return expr
    # Leaves may hide join trees of their own (under selections or
    # projections); descend into them now that this tree is claimed.
    leaves = [
        rebuild_for_joins(leaf, lambda e: route_yannakakis(e, ctx))
        for leaf in leaves
    ]
    by_name = dict(zip(names, leaves))

    # Bottom-up sweep: reduce every node by its (already reduced)
    # children.
    up = {}
    for name in tree.postorder():
        node = by_name[name]
        for child in tree.children(name):
            node = ra.Semijoin(node, up[child])
        up[name] = node
    # Top-down sweep: reduce every node by its fully-reduced parent.
    reduced = {}
    order = tree.preorder()
    for name in order:
        parent = tree.parent[name]
        if parent is None:
            reduced[name] = up[name]
        else:
            reduced[name] = ra.Semijoin(up[name], reduced[parent])
    # Join phase, parents before children so every step shares attributes.
    routed = reduced[order[0]]
    for name in order[1:]:
        routed = ra.NaturalJoin(routed, reduced[name])

    original = expr.schema(ctx.db_schema).attributes
    if routed.schema(ctx.db_schema).attributes != original:
        routed = ra.Projection(routed, original)
    ctx.fire("route-yannakakis")
    ctx.note("join_method", "yannakakis")
    ctx.note(
        "join_order",
        tuple(_leaf_label(by_name[name]) for name in order),
    )
    return routed


#: Estimated per-tuple cost multiplier of the semijoin program itself:
#: the up and down sweeps each touch every leaf tuple once, on top of
#: the join phase the plain tree would run anyway.
_SEMIJOIN_SWEEP_FACTOR = 2.0


def _routing_pays(expr, leaves, ctx):
    """Cost gate: route only when estimated savings clear the threshold.

    The win of a Yannakakis program is the intermediate volume it never
    materializes: the sum of estimated rows across the tree's internal
    joins, minus the root's rows (which any plan must produce).  The
    price is the semijoin sweeps themselves — up and down passes that
    each touch every leaf tuple.  Small star and chain queries, whose
    intermediates are barely larger than their result, lose wall time
    to the extra passes (``BENCH_optimizer.json`` records the
    regressions), so the rewrite must *pay for its sweeps* in saved
    tuples first.  A ``yannakakis_threshold`` of None disables the gate
    (the pre-gate behavior: route whatever qualifies structurally).
    """
    threshold = ctx.yannakakis_threshold
    if threshold is None:
        return True
    volume = _join_volume(expr, ctx)
    root_rows = ctx.cost.rows(expr, ctx.db)
    sweep_cost = _SEMIJOIN_SWEEP_FACTOR * sum(
        ctx.cost.rows(leaf, ctx.db) for leaf in leaves
    )
    return (volume - root_rows) - sweep_cost > threshold


def _join_volume(expr, ctx):
    """Estimated rows summed over every internal join of a join tree."""
    if isinstance(expr, ra.NaturalJoin):
        return (
            ctx.cost.rows(expr, ctx.db)
            + _join_volume(expr.left, ctx)
            + _join_volume(expr.right, ctx)
        )
    return 0


# ---------------------------------------------------------------------------
# Cost-based ordering
# ---------------------------------------------------------------------------


def greedy_order(leaves, ctx):
    """The classical greedy heuristic: repeatedly join the cheapest pair."""
    parts = list(leaves)
    while len(parts) > 1:
        best = None
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                candidate = ra.NaturalJoin(parts[i], parts[j])
                cost = ctx.cost.rows(candidate, ctx.db)
                if best is None or cost < best[0]:
                    best = (cost, i, j, candidate)
        _, i, j, candidate = best
        parts = [p for k, p in enumerate(parts) if k not in (i, j)] + [
            candidate
        ]
    return parts[0]


def selinger_dp(leaves, attr_sets, ctx):
    """Exact bushy join ordering by dynamic programming over subsets.

    ``best[S]`` holds the cheapest plan joining exactly the leaves in
    ``S``, costed as the total estimated rows of every intermediate
    result (the classic Selinger objective).  Splits that share an
    attribute are preferred; cross products are admitted only for
    subsets with no connected split, so disconnected queries still plan.
    """
    n = len(leaves)
    indices = range(n)
    best = {}
    for i in indices:
        best[frozenset([i])] = (
            0.0,
            leaves[i],
            ctx.cost.rows(leaves[i], ctx.db),
        )
    for size in range(2, n + 1):
        for subset in combinations(indices, size):
            key = frozenset(subset)
            candidates = []
            seen_connected = False
            for r in range(1, size // 2 + 1):
                for left_part in combinations(subset, r):
                    left_key = frozenset(left_part)
                    right_key = key - left_key
                    if left_key not in best or right_key not in best:
                        continue
                    left_attrs = frozenset().union(
                        *(attr_sets[i] for i in left_key)
                    )
                    right_attrs = frozenset().union(
                        *(attr_sets[i] for i in right_key)
                    )
                    connected = bool(left_attrs & right_attrs)
                    candidates.append(
                        (connected, left_key, right_key)
                    )
                    seen_connected = seen_connected or connected
            chosen = None
            for connected, left_key, right_key in candidates:
                if seen_connected and not connected:
                    continue
                left_cost, left_expr, left_rows = best[left_key]
                right_cost, right_expr, right_rows = best[right_key]
                # Build the bigger side on the left: the executor
                # streams the left input and indexes the right.
                if left_rows >= right_rows:
                    candidate = ra.NaturalJoin(left_expr, right_expr)
                else:
                    candidate = ra.NaturalJoin(right_expr, left_expr)
                rows = ctx.cost.rows(candidate, ctx.db)
                total = left_cost + right_cost + rows
                if chosen is None or total < chosen[0]:
                    chosen = (total, candidate, rows)
            best[key] = chosen
    return best[frozenset(indices)][1]


def _join_shape(expr):
    """The join tree's shape over leaf identities — detects both
    reordering and reassociation (bushy vs left-deep)."""
    if isinstance(expr, ra.NaturalJoin):
        return (_join_shape(expr.left), _join_shape(expr.right))
    return id(expr)


def order_joins_pass(expr, ctx):
    """Cost-based ordering of natural-join trees (the ``order-joins``
    rule): exact DP below the threshold, greedy above it.

    Skips trees containing semijoin leaves — those were just emitted by
    ``route-yannakakis`` and their join phase is already ordered along
    the join tree.
    """
    expr = rebuild_for_joins(expr, lambda e: order_joins_pass(e, ctx))
    if not isinstance(expr, ra.NaturalJoin) or ctx.db is None:
        return expr
    leaves = flatten_joins(expr)
    if len(leaves) <= 2:
        return expr
    if any(isinstance(leaf, (ra.Semijoin, ra.Antijoin)) for leaf in leaves):
        return expr
    db_schema = (
        ctx.db_schema if ctx.db_schema is not None else ctx.db.schema()
    )
    original = expr.schema(db_schema).attributes
    attr_sets = _leaf_schemas(leaves, db_schema)
    threshold = ctx.dp_threshold
    if attr_sets is not None and len(leaves) <= threshold:
        joined = selinger_dp(leaves, attr_sets, ctx)
        method = "dp"
    else:
        joined = greedy_order(leaves, ctx)
        method = "greedy"
    if joined.schema(db_schema).attributes != original:
        joined = ra.Projection(joined, original)
    stripped = (
        joined.child if isinstance(joined, ra.Projection) else joined
    )
    if _join_shape(stripped) == _join_shape(expr):
        return expr
    ctx.fire("order-joins")
    ctx.note("join_method", method)
    ctx.note(
        "join_order",
        tuple(_leaf_label(leaf) for leaf in flatten_joins(stripped)),
    )
    return joined


def rebuild_for_joins(expr, recurse):
    """Identity-preserving rebuild (re-exported to avoid an import cycle)."""
    from .rules import rebuild

    return rebuild(expr, recurse)
