"""The rewrite engine: run a rule pipeline over a logical plan.

A deliberately simple driver: rules run in registry (pipeline) order,
each as one full recursive pass; rules marked ``fixpoint`` repeat until
a pass changes nothing.  Change detection is *object identity* — every
rule returns its input object untouched when it has nothing to do — so
the engine needs no hashing and tolerates front-end extension nodes.

There is intentionally **no global fixpoint** over the whole pipeline:
``split-selections`` and ``merge-selections`` are mutual inverses (as
are, in spirit, pushdowns and their hoisting duals), so a global loop
would oscillate.  Pipeline order is the termination argument; the
per-rule bound (:data:`MAX_PASSES`) is a belt-and-suspenders cap that a
correct rule never reaches.
"""

from __future__ import annotations

#: Hard cap on repeated passes of a single fixpoint rule.
MAX_PASSES = 25


class RewriteEngine:
    """Applies an ordered rule list to a plan, recording what fired."""

    __slots__ = ("rules",)

    def __init__(self, rules):
        self.rules = tuple(rules)

    def run(self, expr, ctx):
        """Rewrite ``expr`` under ``ctx``; firing counts land in
        ``ctx.fired`` and enumeration notes in ``ctx.notes``."""
        for rule in self.rules:
            expr = self._apply(rule, expr, ctx)
        return expr

    def _apply(self, rule, expr, ctx):
        if not rule.fixpoint:
            return rule.fn(expr, ctx)
        for _ in range(MAX_PASSES):
            rewritten = rule.fn(expr, ctx)
            if rewritten is expr:
                return expr
            expr = rewritten
        return expr

    def __repr__(self):
        return "RewriteEngine(%s)" % ", ".join(r.name for r in self.rules)
