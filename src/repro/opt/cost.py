"""The one cost surface: cardinality estimation for every consumer.

Everything in the library that needs a size guess now asks this module:

* the rewrite/enumeration pipeline (:mod:`repro.opt.joins`) costs join
  orders with :class:`CostModel`;
* the legacy shim (:func:`repro.relational.optimizer.estimate_cardinality`)
  delegates to the *classical* profile (no catalog);
* the Datalog rule-body planner orders literals by
  :func:`estimate_literal_matches` over live relation sizes;
* the parallel backend's cost gate calls :func:`estimate_plan_work`.

:class:`CostModel` has two profiles.  Without a catalog it reproduces the
deliberately classical System R model bit for bit (true base counts,
1/10 equality selectivity, 1/3 ranges, joins divide by the larger side)
— the shim's pinned tests depend on those exact numbers.  With a
:class:`~repro.opt.catalog.Catalog` it replaces the fixed selectivities
with distinct-count arithmetic: an equality against a constant keeps
``1/V(R, a)`` of the rows, an equi-join divides by the larger distinct
count of the join attribute, and distinct counts are propagated through
operators so estimates stay grounded as plans deepen.
"""

from __future__ import annotations

from ..relational import algebra as ra

#: Default selectivity of an equality predicate (classical System R value).
EQUALITY_SELECTIVITY = 0.1
#: Default selectivity of a range predicate.
RANGE_SELECTIVITY = 1.0 / 3.0


class Estimate:
    """An estimated relation: row count plus per-attribute distincts."""

    __slots__ = ("rows", "distinct")

    def __init__(self, rows, distinct=None):
        self.rows = float(rows)
        self.distinct = distinct if distinct is not None else {}

    def clamped(self):
        """Cap every distinct count at the row count (a hard invariant)."""
        self.distinct = {
            a: min(d, self.rows) for a, d in self.distinct.items()
        }
        return self

    def __repr__(self):
        return "Estimate(rows=%.1f)" % self.rows


class CostModel:
    """Cardinality estimation over canonical (and extension) plans.

    Args:
        catalog: a :class:`~repro.opt.catalog.Catalog` for
            statistics-backed selectivities, or None for the classical
            fixed-selectivity profile.
    """

    __slots__ = ("catalog",)

    def __init__(self, catalog=None):
        self.catalog = catalog

    # -- public surface ------------------------------------------------------

    def rows(self, expr, db):
        """Estimated output cardinality of ``expr`` over ``db``."""
        return self.estimate(expr, db).rows

    def estimate(self, expr, db):
        """Full :class:`Estimate` (rows + distincts) for ``expr``."""
        if isinstance(expr, ra.RelationRef):
            return self._base(expr.name, db)
        if isinstance(expr, ra.ConstantRelation):
            relation = expr.relation
            distinct = {}
            for position, attribute in enumerate(
                relation.schema.attributes
            ):
                distinct[attribute] = float(
                    len({t[position] for t in relation.tuples})
                )
            return Estimate(len(relation), distinct)
        if isinstance(expr, ra.Selection):
            child = self.estimate(expr.child, db)
            selectivity = self.selectivity(expr.condition, child)
            out = Estimate(child.rows * selectivity, dict(child.distinct))
            return out.clamped()
        if isinstance(expr, ra.Projection):
            child = self.estimate(expr.child, db)
            distinct = {
                a: child.distinct[a]
                for a in expr.attributes
                if a in child.distinct
            }
            return Estimate(child.rows, distinct)
        if isinstance(expr, ra.Rename):
            child = self.estimate(expr.child, db)
            distinct = {
                expr.mapping.get(a, a): d
                for a, d in child.distinct.items()
            }
            return Estimate(child.rows, distinct)
        if isinstance(expr, ra.Product):
            left = self.estimate(expr.left, db)
            right = self.estimate(expr.right, db)
            distinct = dict(left.distinct)
            distinct.update(right.distinct)
            return Estimate(left.rows * right.rows, distinct)
        if isinstance(expr, ra.NaturalJoin):
            return self._join(expr, db)
        if isinstance(expr, ra.ThetaJoin):
            return self._theta(expr, db)
        if isinstance(expr, ra.Union):
            left = self.estimate(expr.left, db)
            right = self.estimate(expr.right, db)
            distinct = {
                a: left.distinct.get(a, 0.0) + right.distinct.get(a, 0.0)
                for a in set(left.distinct) | set(right.distinct)
            }
            return Estimate(left.rows + right.rows, distinct).clamped()
        if isinstance(expr, (ra.Difference, ra.Semijoin, ra.Antijoin)):
            left = self.estimate(expr.left, db)
            self.estimate(expr.right, db)
            return Estimate(left.rows, dict(left.distinct))
        if isinstance(expr, ra.Intersection):
            left = self.estimate(expr.left, db)
            right = self.estimate(expr.right, db)
            rows = min(left.rows, right.rows)
            distinct = {
                a: min(left.distinct.get(a, rows), right.distinct.get(a, rows))
                for a in set(left.distinct) | set(right.distinct)
            }
            return Estimate(rows, distinct).clamped()
        if isinstance(expr, ra.Division):
            left = self.estimate(expr.left, db)
            return Estimate(max(left.rows, 1.0), dict(left.distinct))
        # Unknown/extension nodes: recurse into children pessimistically.
        children = expr.children()
        if children:
            estimates = [self.estimate(c, db) for c in children]
            best = max(estimates, key=lambda e: e.rows)
            return Estimate(best.rows, dict(best.distinct))
        return Estimate(1.0)

    # -- selectivity ---------------------------------------------------------

    def selectivity(self, condition, source):
        """Fraction of ``source`` rows a condition keeps.

        ``source`` is the child's :class:`Estimate` — the catalog profile
        reads distinct counts from it; the classical profile ignores it.
        """
        if isinstance(condition, ra.Comparison):
            return self._comparison_selectivity(condition, source)
        if isinstance(condition, ra.And):
            out = 1.0
            for part in condition.parts:
                out *= self.selectivity(part, source)
            return out
        if isinstance(condition, ra.Or):
            out = 1.0
            for part in condition.parts:
                out *= 1.0 - self.selectivity(part, source)
            return 1.0 - out
        if isinstance(condition, ra.Not):
            return 1.0 - self.selectivity(condition.part, source)
        return 0.5

    def _comparison_selectivity(self, condition, source):
        equality = self._equality_selectivity(condition, source)
        if condition.op == "=":
            return equality
        if condition.op == "!=":
            return 1.0 - equality
        return RANGE_SELECTIVITY

    def _equality_selectivity(self, condition, source):
        if self.catalog is None:
            return EQUALITY_SELECTIVITY
        distincts = []
        for operand in (condition.left, condition.right):
            if isinstance(operand, ra.Attr):
                d = source.distinct.get(operand.name)
                if d is not None and d > 0:
                    distincts.append(d)
        if not distincts:
            return EQUALITY_SELECTIVITY
        return 1.0 / max(distincts)

    # -- node helpers --------------------------------------------------------

    def _base(self, name, db):
        if self.catalog is not None:
            stats = self.catalog.stats(name)
            if stats is not None:
                return Estimate(
                    stats.rows,
                    {a: float(d) for a, d in stats.distincts().items()},
                )
        try:
            relation = db[name]
        except Exception:
            return Estimate(1.0)
        return Estimate(len(relation))

    def _join(self, expr, db):
        left = self.estimate(expr.left, db)
        right = self.estimate(expr.right, db)
        shared = set(left.distinct) & set(right.distinct)
        if self.catalog is not None:
            # No shared attributes means the join *is* the cross
            # product — estimating it as such is what steers the DP
            # enumerator away from cross-product orders.
            rows = left.rows * right.rows
            for attribute in shared:
                divisor = max(
                    left.distinct[attribute], right.distinct[attribute], 1.0
                )
                rows /= divisor
        else:
            rows = (
                left.rows * right.rows / max(left.rows, right.rows, 1.0)
            )
        distinct = {}
        for a, d in left.distinct.items():
            distinct[a] = min(d, right.distinct.get(a, d))
        for a, d in right.distinct.items():
            distinct.setdefault(a, d)
        return Estimate(rows, distinct).clamped()

    def _theta(self, expr, db):
        left = self.estimate(expr.left, db)
        right = self.estimate(expr.right, db)
        distinct = dict(left.distinct)
        distinct.update(right.distinct)
        if self.catalog is not None:
            combined = Estimate(left.rows * right.rows, distinct)
            selectivity = self.selectivity(expr.condition, combined)
            return Estimate(combined.rows * selectivity, distinct).clamped()
        rows = left.rows * right.rows / max(left.rows, right.rows, 1.0)
        return Estimate(rows, distinct).clamped()


# ---------------------------------------------------------------------------
# Datalog literal costing
# ---------------------------------------------------------------------------


def estimate_literal_matches(size, bound_count):
    """Expected matches when probing a relation with ``bound_count``
    bound key positions.

    The rule-body planner's cost unit: each bound position (a constant
    or an already-bound variable) is an equality predicate, so the
    expected match count is the live relation size discounted by the
    classical equality selectivity per bound position.  With zero bound
    positions this is a full scan (``size``); more bound positions mean
    cheaper literals, and between equally-bound literals the smaller
    relation wins — exactly the most-bound-first / smallest-first
    ordering the planner used before, now derived from one formula.
    """
    return size * (EQUALITY_SELECTIVITY ** bound_count)


# ---------------------------------------------------------------------------
# Parallel cost gate
# ---------------------------------------------------------------------------


def estimate_plan_work(expr, db):
    """Cheap work estimate: total rows stored under the plan's leaves.

    Deliberately simple — the parallel gate only needs to separate
    "trivial" from "worth forking for", and leaf cardinality is known
    without touching any data.  Unrecognized (extension) nodes fall back
    to summing over ``children()`` — the conservative choice: an exotic
    plan over large inputs should face the gate's threshold, not be
    silently pinned to serial execution by a zero estimate.
    """
    if isinstance(expr, ra.RelationRef):
        return len(db[expr.name])
    if isinstance(expr, ra.ConstantRelation):
        return len(expr.relation)
    if isinstance(expr, (ra.Selection, ra.Projection, ra.Rename)):
        return estimate_plan_work(expr.child, db)
    left = getattr(expr, "left", None)
    if left is not None:
        return estimate_plan_work(left, db) + estimate_plan_work(
            expr.right, db
        )
    child = getattr(expr, "child", None)
    if child is not None:
        return estimate_plan_work(child, db)
    children = getattr(expr, "children", None)
    if children is not None:
        return sum(estimate_plan_work(c, db) for c in children())
    return 0
