"""Catalog statistics: per-relation cardinalities and distinct counts.

The unified optimizer's one source of truth about data sizes.  A
:class:`Catalog` is bound to a :class:`~repro.relational.database.Database`
and maintains, per relation, a :class:`TableStats`: the row count and a
per-attribute distinct-value census.  Statistics are computed lazily on
first request (one scan of the relation) and then kept current two ways:

* **replacement** — rebinding a relation name (``add``/``replace``/
  ``remove``) drops that name's entry; the next request rescans;
* **incremental delta** — :meth:`Database.insert` / ``apply_delta`` /
  transaction commits change a relation by a known tuple delta and call
  :meth:`Catalog.observe_insert` / :meth:`Catalog.observe_delete`, which
  fold just the delta into the existing census *without* rescanning the
  old tuples (``rescans`` counts full scans, so tests can pin that
  mutations are O(delta), not O(relation)).  Distinct-value censuses are
  value→count maps, so the delete path can decrement exactly.

The Datalog fixpoint engines need no catalog plumbing: their planner is
fed *live* relation sizes per firing (they change every round) and runs
them through the same :mod:`repro.opt.cost` selectivity model.
"""

from __future__ import annotations


class TableStats:
    """Statistics for one relation: row count + per-attribute censuses.

    Attributes:
        rows: number of tuples.
        attributes: the relation's attribute tuple (schema order).
    """

    __slots__ = ("rows", "attributes", "_values")

    def __init__(self, attributes):
        self.rows = 0
        self.attributes = tuple(attributes)
        self._values = {a: {} for a in self.attributes}

    @classmethod
    def from_relation(cls, relation):
        stats = cls(relation.schema.attributes)
        stats.observe(relation.tuples)
        return stats

    def observe(self, rows):
        """Fold an iterable of raw tuples into the census."""
        values = [self._values[a] for a in self.attributes]
        count = 0
        for row in rows:
            count += 1
            for position, value in enumerate(row):
                census = values[position]
                census[value] = census.get(value, 0) + 1
        self.rows += count

    def observe_delete(self, rows):
        """Remove an iterable of raw tuples from the census.

        The value→count maps make deletion exact: a distinct value
        disappears from the census only when its last occurrence goes.
        """
        values = [self._values[a] for a in self.attributes]
        count = 0
        for row in rows:
            count += 1
            for position, value in enumerate(row):
                census = values[position]
                remaining = census.get(value, 0) - 1
                if remaining > 0:
                    census[value] = remaining
                else:
                    census.pop(value, None)
        self.rows -= count

    def distinct(self, attribute):
        """Distinct values seen in ``attribute`` (0 for unknown names)."""
        seen = self._values.get(attribute)
        return len(seen) if seen is not None else 0

    def distincts(self):
        """``{attribute: distinct count}`` over all attributes."""
        return {a: len(v) for a, v in self._values.items()}

    def census_rows(self, name):
        """The census as ``sys_catalog_stats`` tuples.

        One ``(relation, attribute, rows, distinct_values)`` row per
        attribute; nullary relations contribute a single row with an
        empty attribute so their cardinality is still visible.
        """
        if not self.attributes:
            return [(name, "", self.rows, 0)]
        return [
            (name, attribute, self.rows, len(self._values[attribute]))
            for attribute in self.attributes
        ]

    def __repr__(self):
        return "TableStats(rows=%d, %s)" % (
            self.rows,
            ", ".join(
                "%s:%d" % (a, len(self._values[a])) for a in self.attributes
            ),
        )


class Catalog:
    """Lazily-computed, incrementally-maintained statistics for a database.

    Entries validate against the live relation *binding*: relations are
    immutable, so a cached entry is current exactly while the database
    still maps the name to the same object it was computed from.
    """

    __slots__ = ("db", "_entries", "rescans")

    def __init__(self, db):
        self.db = db
        self._entries = {}
        self.rescans = 0

    def stats(self, name):
        """The :class:`TableStats` for relation ``name`` (scan-on-demand).

        Returns None for names not in the database (the cost model falls
        back to its classical defaults).
        """
        if name not in self.db:
            return None
        relation = self.db[name]
        entry = self._entries.get(name)
        if entry is not None and entry[0] is relation:
            return entry[1]
        stats = TableStats.from_relation(relation)
        self.rescans += 1
        self._entries[name] = (relation, stats)
        return stats

    def rows(self, name):
        """Row count of ``name`` (0 for unknown names)."""
        stats = self.stats(name)
        return stats.rows if stats is not None else 0

    def distinct(self, name, attribute):
        """Distinct count of ``attribute`` in ``name`` (0 when unknown)."""
        stats = self.stats(name)
        return stats.distinct(attribute) if stats is not None else 0

    def invalidate(self, name=None):
        """Drop one entry (or all); next request rescans."""
        if name is None:
            self._entries.clear()
        else:
            self._entries.pop(name, None)

    def observe_insert(self, name, relation, added_rows):
        """Fold freshly-inserted rows into ``name``'s census.

        Called by :meth:`Database.insert` with the *new* relation binding
        and just the rows that were added, so maintenance cost is
        proportional to the insert, not the relation.  If no entry
        exists yet there is nothing to maintain — the first ``stats``
        call will scan the new binding anyway.
        """
        entry = self._entries.get(name)
        if entry is None:
            return
        stats = entry[1]
        stats.observe(added_rows)
        self._entries[name] = (relation, stats)

    def observe_delete(self, name, relation, removed_rows):
        """Fold freshly-deleted rows out of ``name``'s census.

        The delete half of incremental maintenance: called by
        ``Database.apply_delta`` (and transaction commits) with the new
        binding and just the rows that left, so a delete is O(delta)
        census work — never a rescan.
        """
        entry = self._entries.get(name)
        if entry is None:
            return
        stats = entry[1]
        stats.observe_delete(removed_rows)
        self._entries[name] = (relation, stats)

    def __repr__(self):
        return "Catalog(%d cached, %d rescans)" % (
            len(self._entries), self.rescans
        )
