"""repro.opt: the unified cost-based optimizer.

One optimization layer for the whole pipeline, replacing the three
private planners that grew up in ``relational/optimizer.py``,
``datalog/planner.py``, and ``parallel/partition.py``:

* :mod:`repro.opt.catalog` — per-relation cardinalities and
  per-attribute distinct counts on :class:`~repro.relational.database.
  Database`, incrementally maintained on insert;
* :mod:`repro.opt.rules` / :mod:`repro.opt.rewrite` — named,
  individually-toggleable rewrite rules driven to fixpoint;
* :mod:`repro.opt.cost` — the one cardinality model every consumer
  shares (rewrites, join ordering, the Datalog body planner, the
  parallel cost gate);
* :mod:`repro.opt.joins` — Selinger DP / greedy join ordering and
  Yannakakis semijoin routing for acyclic join-connected queries.

The front door is :class:`Optimizer` (configurable rule set, DP
threshold, catalog use) or the module-level :func:`optimize` with the
default profile.  ``repro.relational.optimizer`` remains as a thin
deprecated shim over the :data:`CLASSIC_RULES` profile, which reproduces
the historical pipeline (cascade → pushdown → join formation → greedy
reordering with fixed selectivities) bit for bit.
"""

from __future__ import annotations

from .catalog import Catalog, TableStats
from .cost import (
    EQUALITY_SELECTIVITY,
    RANGE_SELECTIVITY,
    CostModel,
    Estimate,
    estimate_literal_matches,
    estimate_plan_work,
)
from .joins import DP_THRESHOLD
from .rewrite import RewriteEngine
from .rules import Context, get_rules, rule_names

#: The full default pipeline, in order.
DEFAULT_RULES = rule_names()

#: The historical ``relational/optimizer.py`` pipeline: selection
#: cascade + pushdown, join formation, greedy reordering, classical
#: fixed selectivities (dp_threshold=0 ⇒ greedy), no catalog.
CLASSIC_RULES = (
    "split-selections",
    "push-selections",
    "form-joins",
    "order-joins",
)


class OptimizationInfo:
    """What one optimization run did: rules fired, enumeration notes."""

    __slots__ = ("fired", "notes", "rules")

    def __init__(self, fired=None, notes=None, rules=()):
        self.fired = dict(fired or {})
        self.notes = dict(notes or {})
        self.rules = tuple(rules)

    @property
    def join_method(self):
        """"yannakakis", "dp", "greedy", or None when no tree was
        enumerated."""
        return self.notes.get("join_method")

    @property
    def join_order(self):
        """Leaf labels in chosen join order (None when not enumerated)."""
        return self.notes.get("join_order")

    def summary(self):
        """One-line human rendering for EXPLAIN headers."""
        parts = []
        if self.fired:
            parts.append(
                "rules=[%s]"
                % ", ".join(
                    "%s×%d" % (name, count)
                    for name, count in sorted(self.fired.items())
                )
            )
        if self.join_method:
            parts.append("join=%s" % self.join_method)
        if self.join_order:
            parts.append("order=%s" % "→".join(self.join_order))
        return "  ".join(parts)

    def as_dict(self):
        return {
            "rules_fired": dict(self.fired),
            "join_method": self.join_method,
            "join_order": (
                list(self.join_order) if self.join_order else None
            ),
            "rules_enabled": list(self.rules),
        }

    def __repr__(self):
        return "OptimizationInfo(%s)" % (self.summary() or "no-op")


class Optimizer:
    """The configurable front door: rewrite + enumerate + cost.

    Args:
        rules: iterable of rule names to enable (default: all, pipeline
            order is always the registry order).
        disable: names to subtract from ``rules`` — the handle the
            rule-toggle metamorphic oracle uses.
        dp_threshold: max join-tree leaves for exact DP ordering
            (0 disables DP entirely; greedy everywhere).
        use_catalog: consult :meth:`Database.catalog` statistics for
            selectivities (False reproduces the classical fixed
            selectivity model).
        yannakakis_threshold: minimum estimated net tuple savings
            before an acyclic join tree routes through the Yannakakis
            semijoin program (see ``opt.joins._routing_pays``); None
            disables the gate and routes every qualifying tree.

    Raises:
        ValueError: on unknown rule names.
    """

    __slots__ = ("rules", "dp_threshold", "use_catalog",
                 "yannakakis_threshold", "_engine")

    def __init__(self, rules=None, disable=(), dp_threshold=DP_THRESHOLD,
                 use_catalog=True, yannakakis_threshold=0.0):
        wanted = set(rules) if rules is not None else set(DEFAULT_RULES)
        dropped = set(disable)
        unknown = (wanted | dropped) - set(rule_names())
        if unknown:
            raise ValueError(
                "unknown optimizer rules: %s" % ", ".join(sorted(unknown))
            )
        # Normalized to registry order: the pipeline order is fixed, so
        # the enabled set is the only real configuration.
        self.rules = tuple(
            n for n in rule_names() if n in wanted and n not in dropped
        )
        self.dp_threshold = dp_threshold
        self.use_catalog = bool(use_catalog)
        self.yannakakis_threshold = yannakakis_threshold
        self._engine = RewriteEngine(get_rules(self.rules))

    def config_token(self):
        """Hashable fingerprint for plan-cache keys."""
        return (self.rules, self.dp_threshold, self.use_catalog,
                self.yannakakis_threshold)

    def context(self, db=None, db_schema=None):
        """A fresh rule :class:`~repro.opt.rules.Context` for one run."""
        catalog = (
            db.catalog() if (db is not None and self.use_catalog) else None
        )
        return Context(
            db=db,
            db_schema=db_schema,
            cost=CostModel(catalog),
            dp_threshold=self.dp_threshold,
            yannakakis_threshold=self.yannakakis_threshold,
        )

    def optimize(self, expr, db=None):
        """Optimize a plan; returns the rewritten expression."""
        plan, _info = self.optimize_info(expr, db)
        return plan

    def optimize_info(self, expr, db=None):
        """Optimize and report: ``(plan, OptimizationInfo)``."""
        ctx = self.context(db)
        plan = self._engine.run(expr, ctx)
        return plan, OptimizationInfo(ctx.fired, ctx.notes, self.rules)

    def __repr__(self):
        return "Optimizer(rules=%d, dp<=%d, catalog=%s)" % (
            len(self.rules), self.dp_threshold, self.use_catalog
        )


def classic_optimizer():
    """The historical pipeline as an Optimizer (the shim's engine)."""
    return Optimizer(rules=CLASSIC_RULES, dp_threshold=0, use_catalog=False)


def optimize(expr, db=None):
    """Optimize with the full default profile (module-level convenience)."""
    return Optimizer().optimize(expr, db)


__all__ = [
    "CLASSIC_RULES",
    "Catalog",
    "Context",
    "CostModel",
    "DEFAULT_RULES",
    "DP_THRESHOLD",
    "EQUALITY_SELECTIVITY",
    "Estimate",
    "OptimizationInfo",
    "Optimizer",
    "RANGE_SELECTIVITY",
    "RewriteEngine",
    "TableStats",
    "classic_optimizer",
    "estimate_literal_matches",
    "estimate_plan_work",
    "optimize",
    "rule_names",
]
