"""The rewrite-rule registry: named, individually-toggleable rewrites.

Every rule is a function ``(expr, ctx) -> expr`` performing one complete
recursive pass over the plan.  Rules are **identity-preserving**: a pass
that changes nothing returns the *same object*, which is how the
:mod:`~repro.opt.rewrite` engine detects fixpoints without hashing
extension nodes.  Every local application calls ``ctx.fire(name)``, so
an optimized run reports exactly which rules did work (surfaced by
``explain_analyze``).

All rules are semantics-preserving *independently* — the conformance
kit's rule-toggle metamorphic oracle disables each one in turn and
demands identical query results.

The registry order is the pipeline order:

1.  ``split-selections``  — σ[a∧b](E) → σ[a](σ[b](E))
2.  ``push-selections``   — sink selections toward the leaves
3.  ``push-antijoin``     — σ[c](A ▷ B) → σ[c](A) ▷ B (and semijoins)
4.  ``fold-constants``    — evaluate constant comparisons; σ[true]/σ[false]
5.  ``prune-projections`` — collapse π∘π, drop identity π, push π into joins
6.  ``form-joins``        — σ[cross-equality](A × B) → theta join
7.  ``merge-selections``  — σ[a](σ[b](E)) → σ[a∧b](E)
8.  ``route-yannakakis``  — acyclic join trees → semijoin program
9.  ``order-joins``       — cost-based join ordering (DP / greedy)

Rules 8-9 live in :mod:`repro.opt.joins` (they are enumeration passes,
not algebraic identities) but register here so they toggle uniformly.
"""

from __future__ import annotations

from ..errors import AlgebraError
from ..relational import algebra as ra
from ..relational.relation import Relation
from .cost import CostModel


class Context:
    """What a rule pass may consult: schema, database, cost model.

    Attributes:
        db: the database (None when optimizing schema-free).
        db_schema: its :class:`~repro.relational.schema.DatabaseSchema`
            (None when unavailable; schema-dependent rules no-op).
        cost: the :class:`~repro.opt.cost.CostModel` to charge plans to.
        fired: ``{rule name: application count}`` for this run.
        notes: free-form facts recorded by enumeration passes (e.g. the
            chosen join method and order), surfaced by EXPLAIN.
        yannakakis_threshold: minimum estimated tuple savings (net of
            the semijoin sweeps' own cost) before a join tree routes
            through Yannakakis; None disables the gate (always route).
    """

    __slots__ = ("db", "db_schema", "cost", "fired", "notes", "dp_threshold",
                 "yannakakis_threshold")

    def __init__(self, db=None, db_schema=None, cost=None, dp_threshold=7,
                 yannakakis_threshold=0.0):
        self.db = db
        self.db_schema = (
            db_schema
            if db_schema is not None
            else (db.schema() if db is not None else None)
        )
        self.cost = cost if cost is not None else CostModel()
        self.fired = {}
        self.notes = {}
        self.dp_threshold = dp_threshold
        self.yannakakis_threshold = yannakakis_threshold

    def fire(self, name):
        self.fired[name] = self.fired.get(name, 0) + 1

    def note(self, key, value):
        self.notes[key] = value


def rebuild(expr, recurse):
    """Apply ``recurse`` to children; rebuild only if something changed.

    Unknown (extension) nodes are returned untouched — front-end trees
    passed through the legacy ``executor=False`` path keep their custom
    nodes intact, exactly as the old optimizer tolerated them.
    """
    if isinstance(expr, (ra.Selection, ra.Projection, ra.Rename)):
        child = recurse(expr.child)
        if child is expr.child:
            return expr
        if isinstance(expr, ra.Selection):
            return ra.Selection(child, expr.condition)
        if isinstance(expr, ra.Projection):
            return ra.Projection(child, expr.attributes)
        return ra.Rename(child, expr.mapping)
    if isinstance(expr, ra.ThetaJoin):
        left = recurse(expr.left)
        right = recurse(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return ra.ThetaJoin(left, right, expr.condition)
    if isinstance(
        expr,
        (
            ra.Product,
            ra.NaturalJoin,
            ra.Union,
            ra.Difference,
            ra.Intersection,
            ra.Division,
            ra.Semijoin,
            ra.Antijoin,
        ),
    ):
        left = recurse(expr.left)
        right = recurse(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return type(expr)(left, right)
    return expr


# ---------------------------------------------------------------------------
# 1. split-selections
# ---------------------------------------------------------------------------


def split_selections(expr, ctx):
    """σ[a ∧ b](E) → σ[a](σ[b](E)): conjuncts become independent
    selections so pushdown can route each to the smallest subtree."""
    expr = rebuild(expr, lambda e: split_selections(e, ctx))
    if isinstance(expr, ra.Selection) and isinstance(expr.condition, ra.And):
        ctx.fire("split-selections")
        inner = expr.child
        for part in reversed(expr.condition.parts):
            inner = ra.Selection(inner, part)
        return inner
    return expr


# ---------------------------------------------------------------------------
# 2. push-selections
# ---------------------------------------------------------------------------


def push_selections(expr, ctx):
    """Push selections as deep as their attribute footprints allow.

    Selections commute with each other, distribute over union /
    intersection / difference, move through rename (with attribute
    rewriting) and through projection when the projected attributes
    cover the condition, and slide into whichever side of a
    product/join mentions all their attributes.
    """
    expr = rebuild(expr, lambda e: push_selections(e, ctx))
    if not isinstance(expr, ra.Selection):
        return expr
    child = expr.child
    condition = expr.condition
    needed = condition.attributes()

    if isinstance(child, ra.Selection):
        # Commute: try pushing below the inner selection.
        pushed = push_selections(ra.Selection(child.child, condition), ctx)
        return ra.Selection(pushed, child.condition)
    if isinstance(child, (ra.Union, ra.Intersection)):
        ctx.fire("push-selections")
        return type(child)(
            push_selections(ra.Selection(child.left, condition), ctx),
            push_selections(ra.Selection(child.right, condition), ctx),
        )
    if isinstance(child, ra.Difference):
        # σ(A − B) = σ(A) − B (pushing into B is also sound but
        # pointless: B only ever removes tuples).
        ctx.fire("push-selections")
        return ra.Difference(
            push_selections(ra.Selection(child.left, condition), ctx),
            child.right,
        )
    if isinstance(child, ra.Projection):
        if needed <= set(child.attributes):
            ctx.fire("push-selections")
            return ra.Projection(
                push_selections(ra.Selection(child.child, condition), ctx),
                child.attributes,
            )
        return expr
    if isinstance(child, ra.Rename):
        inverse = {new: old for old, new in child.mapping.items()}
        rewritten = rewrite_condition(condition, inverse)
        ctx.fire("push-selections")
        return ra.Rename(
            push_selections(ra.Selection(child.child, rewritten), ctx),
            child.mapping,
        )
    if (
        isinstance(child, (ra.Product, ra.NaturalJoin))
        and ctx.db_schema is not None
    ):
        left_attrs = set(child.left.schema(ctx.db_schema).attributes)
        right_attrs = set(child.right.schema(ctx.db_schema).attributes)
        if needed <= left_attrs:
            ctx.fire("push-selections")
            return type(child)(
                push_selections(ra.Selection(child.left, condition), ctx),
                child.right,
            )
        if needed <= right_attrs:
            ctx.fire("push-selections")
            return type(child)(
                child.left,
                push_selections(ra.Selection(child.right, condition), ctx),
            )
        return expr
    return expr


def rewrite_condition(condition, mapping):
    """Rename the attributes mentioned in a condition via ``mapping``."""
    if isinstance(condition, ra.Comparison):
        return ra.Comparison(
            _rewrite_operand(condition.left, mapping),
            condition.op,
            _rewrite_operand(condition.right, mapping),
        )
    if isinstance(condition, ra.And):
        return ra.And(
            *[rewrite_condition(p, mapping) for p in condition.parts]
        )
    if isinstance(condition, ra.Or):
        return ra.Or(
            *[rewrite_condition(p, mapping) for p in condition.parts]
        )
    if isinstance(condition, ra.Not):
        return ra.Not(rewrite_condition(condition.part, mapping))
    raise AlgebraError("unknown condition %r" % (condition,))


def _rewrite_operand(operand, mapping):
    if isinstance(operand, ra.Attr):
        return ra.Attr(mapping.get(operand.name, operand.name))
    return operand


# ---------------------------------------------------------------------------
# 3. push-antijoin
# ---------------------------------------------------------------------------


def push_antijoin(expr, ctx):
    """σ[c](A ▷ B) → σ[c](A) ▷ B, likewise for semijoins.

    A semijoin/antijoin's output schema *is* the left schema, so any
    selection above it only reads left attributes and can filter before
    the probe — the classic trick that shrinks Yannakakis' probe side.
    """
    expr = rebuild(expr, lambda e: push_antijoin(e, ctx))
    if isinstance(expr, ra.Selection) and isinstance(
        expr.child, (ra.Semijoin, ra.Antijoin)
    ):
        ctx.fire("push-antijoin")
        join = expr.child
        return type(join)(
            push_antijoin(ra.Selection(join.left, expr.condition), ctx),
            join.right,
        )
    return expr


# ---------------------------------------------------------------------------
# 4. fold-constants
# ---------------------------------------------------------------------------


def _fold_comparison(condition):
    """True/False for constant-only comparisons, else the condition.

    Mirrors the runtime semantics exactly: mixed-type comparisons other
    than (in)equality are false (the evaluator's TypeError rule).
    """
    if not (
        isinstance(condition.left, ra.Const)
        and isinstance(condition.right, ra.Const)
    ):
        return condition
    comparator = ra._COMPARATORS[condition.op]
    try:
        return bool(comparator(condition.left.value, condition.right.value))
    except TypeError:
        return False


def fold_condition(condition):
    """Partially evaluate a condition; returns a Condition or a bool."""
    if isinstance(condition, ra.Comparison):
        return _fold_comparison(condition)
    if isinstance(condition, (ra.And, ra.Or)):
        is_and = isinstance(condition, ra.And)
        survivors = []
        changed = False
        for part in condition.parts:
            folded = fold_condition(part)
            if isinstance(folded, bool):
                changed = True
                if folded != is_and:
                    # False conjunct / true disjunct decides everything.
                    return folded
                continue  # identity element: drop it
            if folded is not part:
                changed = True
            survivors.append(folded)
        if not survivors:
            return is_and
        if not changed:
            return condition
        if len(survivors) == 1:
            return survivors[0]
        return (ra.And if is_and else ra.Or)(*survivors)
    if isinstance(condition, ra.Not):
        folded = fold_condition(condition.part)
        if isinstance(folded, bool):
            return not folded
        if folded is condition.part:
            return condition
        return ra.Not(folded)
    return condition


def fold_constants(expr, ctx):
    """Evaluate constant comparisons at plan time.

    σ[true](E) disappears; σ[false](E) becomes an empty constant
    relation with E's schema (only when the schema is resolvable);
    partially-constant conjunctions/disjunctions shrink in place.
    """
    expr = rebuild(expr, lambda e: fold_constants(e, ctx))
    if not isinstance(expr, ra.Selection):
        return expr
    folded = fold_condition(expr.condition)
    if folded is expr.condition:
        return expr
    if folded is True:
        ctx.fire("fold-constants")
        return expr.child
    if folded is False:
        if ctx.db_schema is None:
            return expr
        try:
            schema = expr.child.schema(ctx.db_schema)
        except Exception:
            return expr
        ctx.fire("fold-constants")
        return ra.ConstantRelation(Relation(schema, (), validate=False))
    ctx.fire("fold-constants")
    return ra.Selection(expr.child, folded)


# ---------------------------------------------------------------------------
# 5. prune-projections
# ---------------------------------------------------------------------------


def prune_projections(expr, ctx):
    """Collapse π∘π, drop identity projections, push π into joins.

    The join push keeps the join attributes on both sides (so matching
    is unchanged) and only fires when it *strictly* shrinks a side —
    which is also what guarantees the rewrite terminates.
    """
    expr = rebuild(expr, lambda e: prune_projections(e, ctx))
    if not isinstance(expr, ra.Projection):
        return expr
    child = expr.child
    if isinstance(child, ra.Projection):
        # π[a](π[b](E)) → π[a](E); validity guarantees a ⊆ b.
        ctx.fire("prune-projections")
        return prune_projections(
            ra.Projection(child.child, expr.attributes), ctx
        )
    if ctx.db_schema is None:
        return expr
    try:
        child_attrs = child.schema(ctx.db_schema).attributes
    except Exception:
        return expr
    if expr.attributes == child_attrs:
        ctx.fire("prune-projections")
        return child
    if isinstance(child, ra.NaturalJoin):
        try:
            left_attrs = child.left.schema(ctx.db_schema).attributes
            right_attrs = child.right.schema(ctx.db_schema).attributes
        except Exception:
            return expr
        shared = set(left_attrs) & set(right_attrs)
        wanted = set(expr.attributes) | shared
        keep_left = tuple(a for a in left_attrs if a in wanted)
        keep_right = tuple(a for a in right_attrs if a in wanted)
        if not keep_left or not keep_right:
            return expr
        if keep_left == left_attrs and keep_right == right_attrs:
            return expr
        ctx.fire("prune-projections")
        left = child.left
        right = child.right
        if keep_left != left_attrs:
            left = ra.Projection(left, keep_left)
        if keep_right != right_attrs:
            right = ra.Projection(right, keep_right)
        return ra.Projection(ra.NaturalJoin(left, right), expr.attributes)
    return expr


# ---------------------------------------------------------------------------
# 6. form-joins
# ---------------------------------------------------------------------------


def form_joins(expr, ctx):
    """σ[cross-side equality](A × B) → theta join.

    The physical layer turns equi theta joins into hash joins, so
    recognising joins is what makes products disappear from real plans.
    """
    expr = rebuild(expr, lambda e: form_joins(e, ctx))
    if (
        isinstance(expr, ra.Selection)
        and isinstance(expr.child, ra.Product)
        and ctx.db_schema is not None
        and isinstance(expr.condition, ra.Comparison)
        and isinstance(expr.condition.left, ra.Attr)
        and isinstance(expr.condition.right, ra.Attr)
    ):
        left_attrs = set(expr.child.left.schema(ctx.db_schema).attributes)
        right_attrs = set(expr.child.right.schema(ctx.db_schema).attributes)
        a = expr.condition.left.name
        b = expr.condition.right.name
        crosses = (a in left_attrs and b in right_attrs) or (
            a in right_attrs and b in left_attrs
        )
        if crosses:
            ctx.fire("form-joins")
            return ra.ThetaJoin(
                expr.child.left, expr.child.right, expr.condition
            )
    return expr


# ---------------------------------------------------------------------------
# 7. merge-selections
# ---------------------------------------------------------------------------


def merge_selections(expr, ctx):
    """σ[a](σ[b](E)) → σ[a ∧ b](E): one filter pass instead of two.

    Runs after pushdown has placed each conjunct, so merging only fuses
    selections that ended up adjacent anyway.
    """
    expr = rebuild(expr, lambda e: merge_selections(e, ctx))
    if isinstance(expr, ra.Selection) and isinstance(
        expr.child, ra.Selection
    ):
        ctx.fire("merge-selections")
        return ra.Selection(
            expr.child.child, ra.And(expr.condition, expr.child.condition)
        )
    return expr


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class Rule:
    """A named rewrite: one full recursive pass over the plan.

    Attributes:
        name: registry key (what toggles and EXPLAIN report).
        fn: ``(expr, ctx) -> expr``, identity-preserving.
        fixpoint: re-run the pass until it changes nothing (bounded by
            the engine); passes whose single sweep is complete leave
            this False.
    """

    __slots__ = ("name", "fn", "fixpoint")

    def __init__(self, name, fn, fixpoint=False):
        self.name = name
        self.fn = fn
        self.fixpoint = fixpoint

    def __repr__(self):
        return "Rule(%s)" % self.name


def _registry():
    from .joins import order_joins_pass, route_yannakakis

    return (
        Rule("split-selections", split_selections),
        Rule("push-selections", push_selections),
        Rule("push-antijoin", push_antijoin),
        Rule("fold-constants", fold_constants, fixpoint=True),
        Rule("prune-projections", prune_projections, fixpoint=True),
        Rule("form-joins", form_joins),
        Rule("merge-selections", merge_selections),
        Rule("route-yannakakis", route_yannakakis),
        Rule("order-joins", order_joins_pass),
    )


_RULES = None


def all_rules():
    """The full registry, in pipeline order."""
    global _RULES
    if _RULES is None:
        _RULES = _registry()
    return _RULES


def rule_names():
    """All registered rule names, pipeline order."""
    return tuple(rule.name for rule in all_rules())


def get_rules(names):
    """Resolve names to Rule objects, keeping pipeline order.

    Raises:
        ValueError: on unknown names.
    """
    wanted = set(names)
    known = {rule.name for rule in all_rules()}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            "unknown optimizer rules: %s (known: %s)"
            % (", ".join(sorted(unknown)), ", ".join(rule_names()))
        )
    return tuple(rule for rule in all_rules() if rule.name in wanted)
