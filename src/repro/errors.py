"""Exception hierarchy for the ``repro`` library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation schema is malformed or two schemas are incompatible."""


class RelationError(ReproError):
    """A relation instance violates its schema (arity, attribute names)."""


class AlgebraError(ReproError):
    """A relational-algebra expression is ill-typed or cannot be evaluated."""


class CalculusError(ReproError):
    """A relational-calculus formula is unsafe, ill-typed, or malformed."""


class TranslationError(ReproError):
    """A calculus<->algebra translation step failed (Codd's Theorem code)."""


class ParseError(ReproError):
    """Input text could not be parsed (Datalog or the SQL frontend).

    Carries the position of the offending token when available.
    """

    def __init__(self, message, position=None, text=None):
        super().__init__(message)
        self.position = position
        self.text = text


class PlanError(ReproError):
    """A query plan could not be canonicalized, optimized, or executed."""


class ObservabilityError(ReproError):
    """A tracing/metrics instrument was misused (type clash, bad value)."""


class DatalogError(ReproError):
    """A Datalog program is malformed (unsafe rule, bad arity, etc.)."""


class StratificationError(DatalogError):
    """A Datalog program with negation admits no stratification."""


class DependencyError(ReproError):
    """A functional/multivalued dependency is malformed for its schema."""


class NormalizationError(ReproError):
    """A normalization operation (decomposition, synthesis) failed."""


class ChaseError(ReproError):
    """The chase procedure was applied to inconsistent input."""


class HypergraphError(ReproError):
    """A schema hypergraph operation failed (e.g. join tree of cyclic scheme)."""


class TransactionError(ReproError):
    """A schedule or transaction is malformed."""


class SchedulerError(TransactionError):
    """A scheduler rejected or could not process an operation stream."""


class DeadlockError(SchedulerError):
    """A locking scheduler detected a deadlock.

    Attributes:
        victims: transaction ids chosen for abort to break the cycle.
    """

    def __init__(self, message, victims=()):
        super().__init__(message)
        self.victims = tuple(victims)


class IncompleteInformationError(ReproError):
    """An operation on tables with nulls was applied outside its scope."""


class ComplexityError(ReproError):
    """A complexity-theory object (machine, formula) is malformed."""


class MetascienceError(ReproError):
    """A metascience model was configured with invalid parameters."""
