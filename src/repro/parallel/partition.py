"""Hash partitioning of relations and plans for parallel execution.

The door multicore execution walks through is the same one the greedy
join planner opened: equality structure visible in the plan.  A natural
join only combines tuples that *agree* on the shared attributes, so if
every base relation under a plan is split into ``k`` shards by the hash
of one such attribute, every output tuple is derived entirely within one
shard — running the plan fragment per shard and unioning the results is
exactly the original query.  :func:`partition_candidates` computes which
attributes have that property for a canonical plan;
:func:`shard_plans` performs the split, replacing every leaf with a
:class:`~repro.relational.algebra.ConstantRelation` holding its shard
(so fragments are self-contained and picklable — no database handle
crosses the process boundary).

Correct operators (candidate = intersection of both sides' candidates):

* ``Selection``/``Projection``/``Rename`` — per-tuple, pass through
  (projection keeps only surviving attributes; rename translates names);
* ``NaturalJoin`` — matching tuples agree on the candidate, hence land
  in the same shard;
* ``Union``/``Difference``/``Intersection`` — union-compatible sides
  partitioned on the same attribute align shard-by-shard;
* ``Semijoin``/``Antijoin`` — a candidate common to both sides is a
  shared attribute, so witnesses live in the probing tuple's shard
  (including the antijoin's *absence* of witnesses).

``ThetaJoin`` is hash-alignable exactly when its condition carries a
cross-side equality conjunct ``left.x = right.y`` (the shape every SQL
equi-join compiles to): partitioning the left input on ``x`` and the
right on ``y`` puts every satisfying pair in the same shard, whatever
the remaining conjuncts filter.  ``Product``, non-equi ``ThetaJoin``,
and ``Division`` have no hash-alignment to exploit and report no
candidates; plans containing them fall back to the serial executor.

The cost gate (:func:`estimate_plan_work`) keeps small queries off the
pool entirely: below the threshold the fork/pickle/IPC overhead dwarfs
any per-shard win, so the backend never spawns workers for them (a test
pins this).
"""

from __future__ import annotations

from ..errors import PlanError
from ..opt.cost import estimate_plan_work  # noqa: F401  (re-export: the
# cost gate's estimator lives on the unified optimizer cost surface now)
from ..relational import algebra as ra
from ..relational.relation import Relation

#: Node types whose partition candidates are the intersection of both
#: sides' candidates (see module docstring for the per-operator
#: correctness argument).
_ALIGNED_BINARY = (
    ra.NaturalJoin,
    ra.Union,
    ra.Difference,
    ra.Intersection,
    ra.Semijoin,
    ra.Antijoin,
)


def _equi_pairs(expr, db_schema):
    """Cross-side equality pairs ``(left_attr, right_attr)`` of a ThetaJoin.

    Only *top-level conjuncts* of the condition count: an equality under
    an ``Or`` or ``Not`` does not constrain every surviving pair.
    """
    left_attrs = set(expr.left.schema(db_schema).attributes)
    right_attrs = set(expr.right.schema(db_schema).attributes)
    condition = expr.condition
    conjuncts = (
        condition.parts if isinstance(condition, ra.And) else (condition,)
    )
    pairs = []
    for part in conjuncts:
        if not (
            isinstance(part, ra.Comparison)
            and part.op == "="
            and isinstance(part.left, ra.Attr)
            and isinstance(part.right, ra.Attr)
        ):
            continue
        a, b = part.left.name, part.right.name
        if a in left_attrs and b in right_attrs:
            pairs.append((a, b))
        elif b in left_attrs and a in right_attrs:
            pairs.append((b, a))
    return pairs


def partition_candidates(expr, db_schema):
    """Attributes of ``expr``'s output that admit hash partitioning.

    An attribute ``a`` is a candidate when splitting every leaf relation
    under ``expr`` by ``hash(a-value) % k`` and evaluating the plan
    per-shard reproduces the unpartitioned result as a union.

    Args:
        expr: a canonical algebra expression.
        db_schema: the database schema the plan runs against.

    Returns:
        A set of attribute names (empty when the plan is not
        partitionable).
    """
    if isinstance(expr, ra.RelationRef):
        return set(db_schema[expr.name].attributes)
    if isinstance(expr, ra.ConstantRelation):
        return set(expr.relation.schema.attributes)
    if isinstance(expr, ra.Selection):
        return partition_candidates(expr.child, db_schema)
    if isinstance(expr, ra.Projection):
        return partition_candidates(expr.child, db_schema) & set(
            expr.attributes
        )
    if isinstance(expr, ra.Rename):
        inner = partition_candidates(expr.child, db_schema)
        return {expr.mapping.get(a, a) for a in inner}
    if isinstance(expr, _ALIGNED_BINARY):
        return partition_candidates(
            expr.left, db_schema
        ) & partition_candidates(expr.right, db_schema)
    if isinstance(expr, ra.ThetaJoin):
        out = set()
        left = partition_candidates(expr.left, db_schema)
        right = partition_candidates(expr.right, db_schema)
        for a, b in _equi_pairs(expr, db_schema):
            if a in left and b in right:
                out.add(a)
                out.add(b)
        return out
    return set()


def _leaf_columns(expr, attribute, db, out):
    """Collect ``(relation, position)`` for ``attribute`` at every leaf."""
    if isinstance(expr, ra.RelationRef):
        relation = db[expr.name]
        out.append((relation, relation.schema.position(attribute)))
    elif isinstance(expr, ra.ConstantRelation):
        relation = expr.relation
        out.append((relation, relation.schema.position(attribute)))
    elif isinstance(expr, (ra.Selection, ra.Projection)):
        _leaf_columns(expr.child, attribute, db, out)
    elif isinstance(expr, ra.Rename):
        inverse = {new: old for old, new in expr.mapping.items()}
        _leaf_columns(expr.child, inverse.get(attribute, attribute), db, out)
    elif isinstance(expr, _ALIGNED_BINARY):
        _leaf_columns(expr.left, attribute, db, out)
        _leaf_columns(expr.right, attribute, db, out)
    elif isinstance(expr, ra.ThetaJoin):
        left_attr, right_attr = _theta_split(expr, attribute, db)
        _leaf_columns(expr.left, left_attr, db, out)
        _leaf_columns(expr.right, right_attr, db, out)
    else:
        raise PlanError("no partition column through %r" % (expr,))
    return out


def _theta_split(expr, attribute, db):
    """The (left attr, right attr) alignment pair naming ``attribute``."""
    for a, b in _equi_pairs(expr, db.schema()):
        if attribute in (a, b):
            return a, b
    raise PlanError(
        "no equality pair for %r in %r" % (attribute, expr.condition)
    )




class Partitioner:
    """Splits tuples, relations, and whole plans into ``k`` hash shards."""

    __slots__ = ("shards",)

    def __init__(self, shards):
        if shards < 1:
            raise PlanError("need at least one shard, got %r" % (shards,))
        self.shards = shards

    def shard_of(self, key):
        """Shard index for a hashable key."""
        return hash(key) % self.shards

    def split_tuples(self, tuples, position):
        """Partition raw tuples by the hash of one column."""
        shards = [[] for _ in range(self.shards)]
        k = self.shards
        for t in tuples:
            shards[hash(t[position]) % k].append(t)
        return shards

    def split_relation(self, relation, attribute):
        """Partition a Relation by the hash of one attribute's values."""
        position = relation.schema.position(attribute)
        return [
            Relation(relation.schema, shard, validate=False)
            for shard in self.split_tuples(relation.tuples, position)
        ]

    def split_facts(self, store, predicates=None):
        """Partition a fact store's tuples into ``k`` dicts.

        Unlike plan sharding, *any* split of a semi-naive delta is
        correct (differential firings are linear in the delta literal),
        so this hashes whole tuples purely for balance.

        Returns:
            A list of ``{predicate: [tuples]}`` dicts.
        """
        shards = [{} for _ in range(self.shards)]
        k = self.shards
        for predicate in (
            store.predicates() if predicates is None else predicates
        ):
            for tup in store.get(predicate):
                bucket = shards[hash(tup) % k]
                bucket.setdefault(predicate, []).append(tup)
        return shards

    def choose_attribute(self, expr, db):
        """The best partition attribute for a plan, or None.

        Among the candidates, picks the one whose *least diverse* leaf
        column still has the most distinct values — hash balance is only
        as good as the narrowest column it flows through.  Returns None
        when every candidate flows through a column with at most one
        distinct value (partitioning would put all the work in one
        shard).
        """
        candidates = partition_candidates(expr, db.schema())
        best, best_spread = None, 1
        for attribute in sorted(candidates):
            columns = _leaf_columns(expr, attribute, db, [])
            spread = min(
                (len({t[p] for t in rel.tuples}) for rel, p in columns),
                default=0,
            )
            if spread > best_spread:
                best, best_spread = attribute, spread
        return best

    def shard_plans(self, expr, db, attribute=None):
        """``(attribute, fragments)`` — ``k`` self-contained plan
        fragments — or None.

        Every leaf is replaced by a ConstantRelation holding its shard,
        so a fragment needs no database to run and ships whole to a
        worker.  A partition attribute only has to stay *visible*
        (survive projections) up to the last aligned binary operator,
        not to the root: unary operators above that point apply to each
        fragment unchanged.  Returns None when no usable partition
        attribute exists anywhere on the unary spine.
        """
        wrappers = []
        node = expr
        while True:
            chosen = (
                attribute
                if attribute is not None
                else self.choose_attribute(node, db)
            )
            if chosen is not None:
                break
            if isinstance(node, (ra.Selection, ra.Projection, ra.Rename)):
                wrappers.append(node)
                node = node.child
                continue
            return None
        fragments = self._rewrite(node, chosen, db)
        for wrapper in reversed(wrappers):
            fragments = [
                _rewrap(wrapper, fragment) for fragment in fragments
            ]
        return chosen, fragments

    def _rewrite(self, expr, attribute, db):
        if isinstance(expr, ra.RelationRef):
            return [
                ra.ConstantRelation(shard)
                for shard in self.split_relation(db[expr.name], attribute)
            ]
        if isinstance(expr, ra.ConstantRelation):
            return [
                ra.ConstantRelation(shard)
                for shard in self.split_relation(expr.relation, attribute)
            ]
        if isinstance(expr, ra.Selection):
            return [
                ra.Selection(child, expr.condition)
                for child in self._rewrite(expr.child, attribute, db)
            ]
        if isinstance(expr, ra.Projection):
            return [
                ra.Projection(child, expr.attributes)
                for child in self._rewrite(expr.child, attribute, db)
            ]
        if isinstance(expr, ra.Rename):
            inverse = {new: old for old, new in expr.mapping.items()}
            return [
                ra.Rename(child, expr.mapping)
                for child in self._rewrite(
                    expr.child, inverse.get(attribute, attribute), db
                )
            ]
        if isinstance(expr, _ALIGNED_BINARY):
            lefts = self._rewrite(expr.left, attribute, db)
            rights = self._rewrite(expr.right, attribute, db)
            return [
                type(expr)(left, right) for left, right in zip(lefts, rights)
            ]
        if isinstance(expr, ra.ThetaJoin):
            left_attr, right_attr = _theta_split(expr, attribute, db)
            lefts = self._rewrite(expr.left, left_attr, db)
            rights = self._rewrite(expr.right, right_attr, db)
            return [
                ra.ThetaJoin(left, right, expr.condition)
                for left, right in zip(lefts, rights)
            ]
        raise PlanError("cannot shard through %r" % (expr,))

    def __repr__(self):
        return "Partitioner(shards=%d)" % self.shards


def _rewrap(wrapper, child):
    """Re-apply one unary operator from the spine above the split point."""
    if isinstance(wrapper, ra.Selection):
        return ra.Selection(child, wrapper.condition)
    if isinstance(wrapper, ra.Projection):
        return ra.Projection(child, wrapper.attributes)
    return ra.Rename(child, wrapper.mapping)
