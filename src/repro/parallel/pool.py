"""A resilient multiprocessing worker pool for plan fragments and deltas.

Design constraints, in order:

1. **A hung or killed worker must never wedge a query.**  Every
   :meth:`WorkerPool.run` has a deadline; tasks still unfinished at the
   deadline (or owned by a dead process) are re-executed *serially in
   the parent* via the caller's fallback, the offending worker is
   terminated, and a replacement is spawned for the next run.  Results
   arriving late from a retired worker carry a stale epoch and are
   dropped on the floor.
2. **Workers are reused across a session.**  Processes are spawned
   lazily on first use and then persist, so repeated queries pay the
   fork cost once.  State-carrying messages (*casts* — e.g. "here is
   the semi-naive working store") are recorded in a replay log and
   replayed into any respawned worker, so a replacement converges to
   the same state as the worker it replaced.
3. **Results stream back in chunks** (``chunk_size`` tuples per queue
   message) so a large shard result never serializes as one giant
   pickle, and the parent can start unioning while workers still run.

Handlers are registered at import time via :func:`task_handler` /
:func:`cast_handler` decorators on module-level functions, so the
protocol works under any multiprocessing start method (payloads are
plain picklable data; no closures cross the process boundary).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback

#: kind -> callable(state, payload) -> (rows, extra_dict)
_TASK_HANDLERS = {}
#: kind -> callable(state, payload) -> None
_CAST_HANDLERS = {}


def task_handler(kind):
    """Register a worker task handler (module-level function)."""

    def register(function):
        _TASK_HANDLERS[kind] = function
        return function

    return register


def cast_handler(kind):
    """Register a worker state-mutation handler (no reply)."""

    def register(function):
        _CAST_HANDLERS[kind] = function
        return function

    return register


# -- built-in handlers (fault-injection tests and smoke checks) -----------


@task_handler("_echo")
def _echo(state, payload):
    return list(payload), {}


@task_handler("_hang")
def _hang(state, payload):
    time.sleep(payload)
    return [], {}


@task_handler("_crash")
def _crash(state, payload):
    os._exit(1)


@cast_handler("_set")
def _set(state, payload):
    key, value = payload
    state[key] = value


@task_handler("_get")
def _get(state, payload):
    return [state.get(payload)], {}


def _worker_main(tasks, results, chunk_size):
    """Worker process loop: casts mutate local state, tasks reply."""
    state = {}
    while True:
        try:
            message = tasks.get()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        if message[0] == "cast":
            _, kind, payload = message
            try:
                _CAST_HANDLERS[kind](state, payload)
            except Exception:
                # A broken cast poisons the state; surface it on the
                # next task instead of silently computing wrong answers.
                state["__broken__"] = traceback.format_exc()
            continue
        _, task_id, kind, payload = message
        try:
            if "__broken__" in state:
                raise RuntimeError(
                    "worker state broken by failed cast:\n"
                    + state.pop("__broken__")
                )
            started = time.perf_counter()
            rows, extra = _TASK_HANDLERS[kind](state, payload)
            rows = list(rows)
            extra = dict(extra or {})
            extra.setdefault("elapsed", time.perf_counter() - started)
            for offset in range(0, len(rows), chunk_size):
                results.put(
                    (task_id, "chunk", rows[offset : offset + chunk_size])
                )
            results.put((task_id, "done", extra))
        except Exception:
            results.put((task_id, "error", traceback.format_exc()))


class ShardOutcome:
    """One task's result: rows, worker-side extras, and how it ran."""

    __slots__ = ("rows", "extra", "mode", "detail")

    def __init__(self, rows, extra, mode, detail=None):
        self.rows = rows
        self.extra = extra
        self.mode = mode  # "parallel" | "serial-retry"
        self.detail = detail

    @property
    def elapsed(self):
        return self.extra.get("elapsed", 0.0)

    def __repr__(self):
        return "ShardOutcome(%d rows, %s)" % (len(self.rows), self.mode)


class _Worker:
    """A live worker process plus its directed task queue."""

    __slots__ = ("process", "queue", "pending")

    def __init__(self, process, task_queue):
        self.process = process
        self.queue = task_queue
        self.pending = set()


class WorkerPool:
    """A fixed-size pool of reusable worker processes.

    Observability counters (all plain ints, inspectable in tests):

    * ``spawned`` — processes ever started (first start + respawns);
    * ``respawns`` — replacements for dead/hung workers;
    * ``tasks_dispatched`` / ``serial_retries`` — fan-out volume and how
      many tasks degraded to the parent-side fallback.
    """

    __slots__ = (
        "workers",
        "timeout",
        "chunk_size",
        "_ctx",
        "_handles",
        "_results",
        "_epoch",
        "_cast_log",
        "spawned",
        "respawns",
        "tasks_dispatched",
        "serial_retries",
    )

    def __init__(self, workers=2, timeout=60.0, chunk_size=4096,
                 start_method=None):
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.chunk_size = chunk_size
        self._ctx = multiprocessing.get_context(start_method)
        self._handles = []
        self._results = None
        self._epoch = 0
        self._cast_log = []
        self.spawned = 0
        self.respawns = 0
        self.tasks_dispatched = 0
        self.serial_retries = 0

    # -- lifecycle --------------------------------------------------------

    @property
    def started(self):
        """Whether any worker process has been spawned."""
        return bool(self._handles)

    def start(self):
        """Spawn workers up to the pool size (idempotent, lazy)."""
        if self._results is None:
            self._results = self._ctx.Queue()
        while len(self._handles) < self.workers:
            self._handles.append(self._spawn())
        return self

    def _spawn(self):
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(task_queue, self._results, self.chunk_size),
            daemon=True,
        )
        process.start()
        self.spawned += 1
        for kind, payload in self._cast_log:
            task_queue.put(("cast", kind, payload))
        return _Worker(process, task_queue)

    def close(self):
        """Stop all workers; the pool can be started again afterwards."""
        for handle in self._handles:
            try:
                handle.queue.put(None)
            except Exception:
                pass
        for handle in self._handles:
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.queue.close()
        self._handles = []

    # -- state casts ------------------------------------------------------

    def broadcast(self, kind, payload, replay=True):
        """Send a state cast to every worker.

        With ``replay`` (default) the cast is recorded and replayed into
        any worker respawned later, so replacements converge to the same
        state.
        """
        self.start()
        if replay:
            self._cast_log.append((kind, payload))
        for handle in self._handles:
            handle.queue.put(("cast", kind, payload))

    def reset_casts(self):
        """Forget the replay log (start of a new stateful phase)."""
        self._cast_log = []

    # -- task fan-out -----------------------------------------------------

    def run(self, tasks, fallback, timeout=None):
        """Execute tasks across the pool; degrade stragglers to serial.

        Args:
            tasks: list of ``(kind, payload)`` pairs, round-robined over
                the workers.
            fallback: ``callable(kind, payload) -> (rows, extra)`` run
                *in the parent* for any task whose worker hung, died, or
                errored.
            timeout: overall deadline in seconds (default: the pool's).

        Returns:
            One :class:`ShardOutcome` per task, in task order.
        """
        self.start()
        self._epoch += 1
        epoch = self._epoch
        deadline = time.monotonic() + (
            self.timeout if timeout is None else timeout
        )
        rows = [[] for _ in tasks]
        outcomes = [None] * len(tasks)
        owner = {}
        for i, (kind, payload) in enumerate(tasks):
            handle = self._handles[i % len(self._handles)]
            handle.queue.put(("task", (epoch, i), kind, payload))
            handle.pending.add(i)
            owner[i] = handle
            self.tasks_dispatched += 1

        done = set()
        failed = {}
        suspect = set()  # workers that hung, died, or were cut off

        def fail(i, reason, retire=True):
            if i not in done and i not in failed:
                failed[i] = reason
                owner[i].pending.discard(i)
                if retire:
                    suspect.add(id(owner[i]))

        while len(done) + len(failed) < len(tasks):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                message = self._results.get(timeout=min(remaining, 0.05))
            except queue_module.Empty:
                for i in list(owner):
                    if i not in done and i not in failed:
                        if not owner[i].process.is_alive():
                            fail(i, "worker died")
                continue
            except Exception:
                # A worker killed mid-put can corrupt one queue message;
                # drop it and let the deadline/fallback machinery recover.
                continue
            task_id, tag, body = message
            msg_epoch, i = task_id
            if msg_epoch != epoch or i in done or i in failed:
                continue  # stale result from a retired epoch
            if tag == "chunk":
                rows[i].extend(body)
            elif tag == "done":
                done.add(i)
                owner[i].pending.discard(i)
                outcomes[i] = ShardOutcome(rows[i], body, "parallel")
            else:  # "error": a clean worker-side exception — the worker
                # caught it and is healthy, so no retirement needed.
                fail(i, body, retire=False)

        for i in range(len(tasks)):
            if i not in done and i not in failed:
                fail(i, "timeout (straggler)")

        # Retire workers that hung, died, or were cut off mid-task: their
        # next message would be stale anyway (epoch guard), so replace
        # them wholesale and replay the cast log into the replacement.
        for index, handle in enumerate(self._handles):
            if id(handle) in suspect or not handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
                self._handles[index] = self._spawn()
                self.respawns += 1

        for i, reason in failed.items():
            kind, payload = tasks[i]
            retry_started = time.perf_counter()
            retry_rows, extra = fallback(kind, payload)
            extra = dict(extra or {})
            extra.setdefault("elapsed", time.perf_counter() - retry_started)
            self.serial_retries += 1
            outcomes[i] = ShardOutcome(
                list(retry_rows), extra, "serial-retry", detail=reason
            )
        return outcomes

    def stats(self):
        """The pool's observability counters as one flat dict."""
        return {
            "workers": self.workers,
            "started": self.started,
            "spawned": self.spawned,
            "respawns": self.respawns,
            "tasks_dispatched": self.tasks_dispatched,
            "serial_retries": self.serial_retries,
        }

    def __repr__(self):
        return "WorkerPool(workers=%d, started=%s)" % (
            self.workers, self.started
        )
