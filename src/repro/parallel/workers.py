"""Worker-side task handlers: what actually runs in a pool process.

Two families:

* ``fragment`` — stateless: execute one self-contained plan fragment
  (every leaf a ConstantRelation, see
  :meth:`~repro.parallel.partition.Partitioner.shard_plans`) on the
  streaming executor and stream the result tuples back.
* ``sn_*`` — stateful sharded semi-naive: ``sn_init`` loads a stratum's
  working store and rules into the worker (a *cast*, replayed into
  respawned workers), ``sn_merge`` folds each round's full delta in so
  every worker sees the complete store, and ``sn_fire`` runs the
  differential rule firings for one delta *shard*, returning derived
  ``(predicate, values)`` pairs.  Any split of the delta is correct —
  differential firing is linear in the delta literal — so shards are
  hashed purely for balance.

Handlers return raw data (tuples and counter dicts); all policy — cost
gates, dedup against the global store, span bookkeeping — stays in the
parent.
"""

from __future__ import annotations

from ..datalog.facts import FactStore
from ..datalog.indexing import working_store
from ..datalog.matching import evaluate_rule
from ..datalog.stats import EngineStatistics
from ..plan.executor import execute_physical
from ..relational.database import Database
from .pool import cast_handler, task_handler

#: Fragments are self-contained (ConstantRelation leaves), so they all
#: execute against one shared empty database.
_EMPTY_DB = Database()


@task_handler("fragment")
def run_fragment(state, plan):
    """Execute one canonical plan fragment; return its tuples + counters."""
    stats = EngineStatistics()
    relation, tally = execute_physical(plan, _EMPTY_DB, stats)
    return list(relation.tuples), {
        "stats": stats.as_dict(),
        "peak_buffer": tally.peak_buffer,
    }


@cast_handler("sn_init")
def sn_init(state, payload):
    """Load one stratum's working store and rules into this worker."""
    key, facts, rules, indexed, planned = payload
    store = working_store(facts, indexed)
    state[key] = {
        "store": store,
        "lookup": store.view if indexed else store.get,
        "rules": rules,
        "planned": planned,
        "idb": {rule.head.predicate for rule in rules},
    }


@cast_handler("sn_merge")
def sn_merge(state, payload):
    """Fold a completed round's full delta into the worker's store."""
    key, delta = payload
    state[key]["store"].merge(delta)


@cast_handler("sn_drop")
def sn_drop(state, key):
    """Release a finished stratum's state."""
    state.pop(key, None)


@task_handler("sn_fire")
def sn_fire(state, payload):
    """Differential firings for one delta shard.

    Mirrors the serial semi-naive inner loop exactly: for every rule and
    every positive body literal over a stratum-IDB predicate with facts
    in this shard, fire the rule with the delta literal reading the
    shard.  Derived head tuples may already be known globally — the
    parent dedups against its authoritative store.
    """
    key, shard_facts = payload
    entry = state[key]
    delta = FactStore(shard_facts)
    stats = EngineStatistics()
    derived = []
    for rule in entry["rules"]:
        for position, item in enumerate(rule.body):
            if not getattr(item, "positive", False):
                continue
            predicate = item.atom.predicate
            if predicate not in entry["idb"]:
                continue
            if not delta.count(predicate):
                continue
            for values in evaluate_rule(
                rule,
                entry["lookup"],
                delta_lookup=delta.get,
                delta_at=position,
                stats=stats,
                planned=entry["planned"],
            ):
                derived.append((rule.head.predicate, values))
    return derived, {"stats": stats.as_dict()}
