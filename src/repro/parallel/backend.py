"""The parallel execution backend: cost gate, fan-out, merge.

One :class:`ParallelBackend` per session (the workbench caches one per
worker count) owns a lazily-started :class:`~repro.parallel.pool.WorkerPool`
and decides, query by query, whether partitioned execution is worth the
IPC: plans below the cost gate, plans with no hash-alignable attribute,
and single-worker configurations all run on the ordinary serial
streaming executor — *without ever spawning a worker process* (a test
pins this).  When the gate opens, the plan is split into one
self-contained fragment per worker, fanned out, and the shard results
are unioned; per-shard work arrives back as
:class:`~repro.datalog.stats.EngineStatistics` dicts and is merged into
the caller's counters, so a parallel run charges the same kinds of work
a serial run would.
"""

from __future__ import annotations

import os

from ..datalog.stats import EngineStatistics
from ..obs.trace import NULL_TRACER
from ..plan.executor import execute_physical
from ..relational.database import Database
from ..relational.relation import Relation
from ..opt.cost import estimate_plan_work
from .partition import Partitioner
from .pool import WorkerPool

#: Below this many leaf rows a query runs serially: fork/pickle/IPC
#: overhead is measured in milliseconds, and a query this small finishes
#: faster than the fan-out costs.
DEFAULT_COST_GATE = 4096

#: Per-round delta floor for sharded semi-naive: a round with fewer
#: delta tuples than this fires serially in the parent (workers still
#: receive the merge cast, so their stores stay consistent).
DEFAULT_ROUND_GATE = 256


class ExecutionInfo:
    """How one query actually ran (observability for tests and spans)."""

    __slots__ = ("mode", "reason", "shards", "attribute", "outcomes")

    def __init__(self, mode, reason=None, shards=0, attribute=None,
                 outcomes=()):
        self.mode = mode  # "parallel" | "serial"
        self.reason = reason  # why serial, when serial
        self.shards = shards
        self.attribute = attribute
        self.outcomes = outcomes

    def __repr__(self):
        if self.mode == "parallel":
            return "ExecutionInfo(parallel, %d shards on %r)" % (
                self.shards, self.attribute
            )
        return "ExecutionInfo(serial: %s)" % (self.reason,)


class ParallelBackend:
    """Session-scoped parallel execution: a pool plus its cost policy.

    Args:
        workers: worker process count (default: the visible CPU count).
        cost_gate: minimum estimated leaf rows before a relational plan
            is partitioned (see :data:`DEFAULT_COST_GATE`).
        round_gate: minimum delta size before a semi-naive round is
            sharded (see :data:`DEFAULT_ROUND_GATE`).
        timeout: per-fan-out straggler deadline in seconds.
        chunk_size: result-transfer chunk size in tuples.
        start_method: multiprocessing start method (None = platform
            default; handlers are module-level, so "spawn" works too).
    """

    __slots__ = (
        "workers", "cost_gate", "round_gate", "pool",
        "parallel_runs", "serial_runs",
    )

    def __init__(self, workers=None, cost_gate=DEFAULT_COST_GATE,
                 round_gate=DEFAULT_ROUND_GATE, timeout=60.0,
                 chunk_size=4096, start_method=None):
        if workers is None:
            workers = max(1, os.cpu_count() or 1)
        self.workers = max(1, int(workers))
        self.cost_gate = cost_gate
        self.round_gate = round_gate
        self.pool = WorkerPool(
            self.workers, timeout=timeout, chunk_size=chunk_size,
            start_method=start_method,
        )
        self.parallel_runs = 0
        self.serial_runs = 0

    @property
    def pool_started(self):
        """Whether any worker process has been spawned."""
        return self.pool.started

    def close(self):
        """Shut the pool down (idempotent; it restarts lazily if reused)."""
        self.pool.close()

    def stats(self):
        """Pool counters plus the backend's own gate decisions."""
        stats = self.pool.stats()
        stats["parallel_runs"] = self.parallel_runs
        stats["serial_runs"] = self.serial_runs
        return stats

    # -- relational plans -------------------------------------------------

    def should_parallelize(self, plan, db):
        """Apply the cost gate; returns (bool, reason-when-serial)."""
        if self.workers < 2:
            return False, "single worker"
        estimate = estimate_plan_work(plan, db)
        if estimate < self.cost_gate:
            return False, "below cost gate (%d < %d leaf rows)" % (
                estimate, self.cost_gate
            )
        return True, None

    def execute_plan(self, plan, db, stats=None, tracer=NULL_TRACER):
        """Run a canonical plan, partitioned when the gate allows.

        Returns:
            ``(relation, info)`` — the result (identical to the serial
            streaming executor's, same attribute order, same tuples) and
            an :class:`ExecutionInfo` describing how it ran.
        """
        go, reason = self.should_parallelize(plan, db)
        sharded = None
        if go:
            partitioner = Partitioner(self.workers)
            sharded = partitioner.shard_plans(plan, db)
            if sharded is None:
                go, reason = False, "no partition attribute"
        if not go:
            self.serial_runs += 1
            relation, _tally = execute_physical(plan, db, stats)
            return relation, ExecutionInfo("serial", reason=reason)

        attribute, fragments = sharded
        schema = plan.schema(db.schema())
        # Fragments whose every leaf shard is empty can only produce the
        # empty relation (all supported operators are empty-preserving),
        # so they never cross the process boundary.
        tasks = [
            ("fragment", fragment)
            for fragment in fragments
            if estimate_plan_work(fragment, db) > 0
        ]
        if not tasks:
            self.parallel_runs += 1
            info = ExecutionInfo("parallel", shards=0, attribute=attribute)
            return Relation(schema, (), validate=False), info

        def fallback(kind, fragment):
            relation, tally = execute_physical(fragment, Database())
            return list(relation.tuples), {
                "stats": tally.stats.as_dict(),
                "peak_buffer": tally.peak_buffer,
            }

        with tracer.span(
            "parallel_execute", stats=stats, workers=self.workers,
            shards=len(tasks), attribute=attribute,
        ):
            outcomes = self.pool.run(tasks, fallback)
            out = set()
            merged = EngineStatistics()
            for index, outcome in enumerate(outcomes):
                out.update(outcome.rows)
                shard_stats = outcome.extra.get("stats")
                if shard_stats:
                    merged.merge(EngineStatistics(**shard_stats))
                if tracer.enabled:
                    span = tracer.begin(
                        "shard", index=index, mode=outcome.mode,
                        rows=len(outcome.rows),
                    )
                    tracer.end(span)
                    # The worker measured its own wall clock; the mirror
                    # span only saw the merge, so overwrite.
                    span.elapsed = outcome.elapsed
                    if shard_stats:
                        span.counters = shard_stats
            # The final union is a buffer like any other (symmetric with
            # execute_physical charging its result set).
            merged.tuples_materialized += len(out)
            if stats is not None:
                stats.merge(merged)
        self.parallel_runs += 1
        info = ExecutionInfo(
            "parallel", shards=len(tasks), attribute=attribute,
            outcomes=outcomes,
        )
        return Relation(schema, out, validate=False), info

    def __repr__(self):
        return "ParallelBackend(workers=%d, gate=%d, started=%s)" % (
            self.workers, self.cost_gate, self.pool_started
        )
