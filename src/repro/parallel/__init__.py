"""Parallel partitioned execution: multicore joins and sharded fixpoints.

The process-pool backend behind ``wb.run(..., executor="parallel",
workers=N)`` and ``seminaive_evaluate(..., backend=...)``:

* :mod:`~repro.parallel.partition` — which plans can be hash-partitioned,
  on which attribute, and the actual splitting;
* :mod:`~repro.parallel.pool` — the resilient worker pool (reuse across
  a session, chunked result transfer, timeout + straggler retry, cast
  replay into respawned workers);
* :mod:`~repro.parallel.workers` — what runs inside a worker process
  (plan fragments; sharded semi-naive differential firings);
* :mod:`~repro.parallel.backend` — the cost-gated front door.

Small queries never pay for any of this: below the cost gate the
backend routes straight to the serial streaming executor and no worker
process is ever spawned.
"""

from . import workers  # noqa: F401  (registers the task/cast handlers)
from .backend import (
    DEFAULT_COST_GATE,
    DEFAULT_ROUND_GATE,
    ExecutionInfo,
    ParallelBackend,
)
from .partition import Partitioner, estimate_plan_work, partition_candidates
from .pool import ShardOutcome, WorkerPool, cast_handler, task_handler

__all__ = [
    "DEFAULT_COST_GATE",
    "DEFAULT_ROUND_GATE",
    "ExecutionInfo",
    "ParallelBackend",
    "Partitioner",
    "ShardOutcome",
    "WorkerPool",
    "cast_handler",
    "estimate_plan_work",
    "partition_candidates",
    "task_handler",
]
