"""repro: an executable reproduction of Papadimitriou's PODS '95 essay
"Database Metatheory: Asking the Big Queries".

The library has two halves (see DESIGN.md):

* the classical database-theory corpus the paper surveys — the relational
  model with algebra/calculus and Codd's Theorem (``repro.relational``),
  Datalog with its optimizations and stratified negation
  (``repro.datalog``), dependency/normalization theory with the chase
  (``repro.dependencies``), acyclic schemes and Yannakakis' algorithm
  (``repro.acyclic``), transaction processing (``repro.transactions``),
  incomplete information (``repro.incomplete``), and the Cook/Fagin
  complexity connection (``repro.complexity``);
* the paper's own metascience, executable (``repro.metascience``): the
  Kuhn stage machine (Fig. 1), the research-interaction graph model
  (Fig. 2), and the PODS 1982-1995 retrospective with its harmonic,
  Volterra, and Kitcher analyses (Fig. 3).

``repro.core`` ties everything together in a single
:class:`~repro.core.workbench.MetatheoryWorkbench` facade.
"""

from . import (
    acyclic,
    complexity,
    core,
    datalog,
    dependencies,
    incomplete,
    metascience,
    opt,
    parallel,
    plan,
    relational,
    storage,
    transactions,
)
from .core.workbench import MetatheoryWorkbench
from .errors import ReproError
from .parallel import ParallelBackend

__version__ = "1.0.0"

__all__ = [
    "MetatheoryWorkbench",
    "ParallelBackend",
    "ReproError",
    "acyclic",
    "complexity",
    "core",
    "datalog",
    "dependencies",
    "incomplete",
    "metascience",
    "opt",
    "parallel",
    "plan",
    "relational",
    "storage",
    "transactions",
    "__version__",
]
