"""Conformance kit: fuzzing, oracles, shrinking, and a corpus.

The paper's metatheorems — Codd's calculus/algebra equivalence, the
equivalence of the four Datalog strategies, the serializability
theorems — are executable here as *oracles*: checks that every
evaluation path in the library agrees on randomly generated workloads.
The kit has five parts, one module each:

* :mod:`~repro.conformance.workloads` — seeded case generators for
  every front-end (algebra, SQL, calculus, Datalog, schedules).
* :mod:`~repro.conformance.coverage` — per-construct coverage tracking
  and the generator-bias audit.
* :mod:`~repro.conformance.oracles` — the differential and metamorphic
  oracle registry.
* :mod:`~repro.conformance.shrinker` — delta-debugging reduction of
  failing cases.
* :mod:`~repro.conformance.corpus` — JSON persistence and replay of
  found (and hand-written) regression cases.

Entry point: ``python -m repro.conformance --seconds 30 --seed 0``.
"""

from .corpus import (
    decode_case,
    encode_case,
    load_corpus,
    replay,
    save_case,
)
from .coverage import (
    ALGEBRA_UNIVERSE,
    DATALOG_UNIVERSE,
    SCHEDULE_UNIVERSE,
    UNIVERSES,
    CoverageTracker,
)
from .driver import main, run_conformance
from .oracles import ORACLE_FAMILIES, Oracle, build_oracles
from .shrinker import (
    case_size,
    crash_predicate,
    ddmin_list,
    expression_depth,
    expression_size,
    oracle_predicate,
    shrink_case,
)
from .workloads import Case, GENERATORS, derive_seed, generate_case

__all__ = [
    "ALGEBRA_UNIVERSE",
    "Case",
    "CoverageTracker",
    "DATALOG_UNIVERSE",
    "GENERATORS",
    "ORACLE_FAMILIES",
    "Oracle",
    "SCHEDULE_UNIVERSE",
    "UNIVERSES",
    "build_oracles",
    "case_size",
    "crash_predicate",
    "ddmin_list",
    "decode_case",
    "derive_seed",
    "encode_case",
    "expression_depth",
    "expression_size",
    "generate_case",
    "load_corpus",
    "main",
    "oracle_predicate",
    "replay",
    "run_conformance",
    "save_case",
    "shrink_case",
]
