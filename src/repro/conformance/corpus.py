"""Corpus + replay: failing cases persist as JSON regression entries.

Every divergence the driver finds (after shrinking) serializes into
``tests/conformance/corpus/*.json``; a tier-1 test replays every entry
on each run, so once-found bugs stay found.  Entries are also written
by hand — the seeded corpus reproduces the historical bug classes from
``CHANGES.md`` in hand-shrunk form.

Serialization choices per payload kind:

* **Datalog programs and transaction schedules** round-trip through
  their textual notation (``str`` ↔ ``parse_program`` /
  ``parse_schedule``), so corpus entries stay human-readable where the
  library already has a syntax.
* **Algebra expressions and calculus queries** get a structural JSON
  encoding: the calculus pretty-printer's output is not accepted by
  :func:`~repro.relational.calculus_frontend` (``&``/``~`` sugar), and
  algebra conditions have no text parser at all.
* **Databases and EDBs** are ``{name: {attributes, rows}}`` /
  ``{predicate: rows}`` tables.
"""

from __future__ import annotations

import json
import os

from ..datalog.ast import Atom, Variable
from ..datalog.facts import FactStore
from ..datalog.parser import parse_program
from ..relational import algebra as ra
from ..relational import calculus as rc
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from ..transactions.schedule import parse_schedule
from .workloads import Case

#: Corpus files carry a format version so future layout changes can
#: migrate old entries instead of silently misreading them.
FORMAT = 1


# ---------------------------------------------------------------------------
# Algebra expressions and conditions
# ---------------------------------------------------------------------------


def _encode_operand(operand):
    if isinstance(operand, ra.Attr):
        return ["attr", operand.name]
    return ["const", operand.value]


def _decode_operand(data):
    tag, value = data
    return ra.Attr(value) if tag == "attr" else ra.Const(value)


def encode_condition(condition):
    if isinstance(condition, ra.Comparison):
        return {
            "t": "cmp",
            "left": _encode_operand(condition.left),
            "op": condition.op,
            "right": _encode_operand(condition.right),
        }
    if isinstance(condition, ra.And):
        return {"t": "and", "parts": [encode_condition(p) for p in condition.parts]}
    if isinstance(condition, ra.Or):
        return {"t": "or", "parts": [encode_condition(p) for p in condition.parts]}
    if isinstance(condition, ra.Not):
        return {"t": "not", "part": encode_condition(condition.part)}
    raise TypeError("cannot encode condition %r" % (condition,))


def decode_condition(data):
    tag = data["t"]
    if tag == "cmp":
        return ra.Comparison(
            _decode_operand(data["left"]),
            data["op"],
            _decode_operand(data["right"]),
        )
    if tag == "and":
        return ra.And(*[decode_condition(p) for p in data["parts"]])
    if tag == "or":
        return ra.Or(*[decode_condition(p) for p in data["parts"]])
    if tag == "not":
        return ra.Not(decode_condition(data["part"]))
    raise ValueError("unknown condition tag %r" % (tag,))


def _encode_relation(relation):
    return {
        "name": relation.schema.name,
        "attributes": list(relation.schema.attributes),
        "rows": [list(row) for row in relation.sorted_tuples()],
    }


def _decode_relation(data):
    schema = RelationSchema(data["name"], tuple(data["attributes"]))
    return Relation(schema, [tuple(row) for row in data["rows"]])


def encode_expression(expr):
    if isinstance(expr, ra.RelationRef):
        return {"t": "ref", "name": expr.name}
    if isinstance(expr, ra.ConstantRelation):
        return {"t": "constrel", "relation": _encode_relation(expr.relation)}
    if isinstance(expr, ra.Selection):
        return {
            "t": "select",
            "child": encode_expression(expr.child),
            "condition": encode_condition(expr.condition),
        }
    if isinstance(expr, ra.Projection):
        return {
            "t": "project",
            "child": encode_expression(expr.child),
            "attributes": list(expr.attributes),
        }
    if isinstance(expr, ra.Rename):
        return {
            "t": "rename",
            "child": encode_expression(expr.child),
            "mapping": dict(expr.mapping),
        }
    if isinstance(expr, ra.ThetaJoin):
        return {
            "t": "thetajoin",
            "left": encode_expression(expr.left),
            "right": encode_expression(expr.right),
            "condition": encode_condition(expr.condition),
        }
    if isinstance(expr, ra._Binary):
        return {
            "t": type(expr).__name__.lower(),
            "left": encode_expression(expr.left),
            "right": encode_expression(expr.right),
        }
    raise TypeError("cannot encode expression %r" % (expr,))


_BINARY = {
    "product": ra.Product,
    "naturaljoin": ra.NaturalJoin,
    "semijoin": ra.Semijoin,
    "antijoin": ra.Antijoin,
    "union": ra.Union,
    "difference": ra.Difference,
    "intersection": ra.Intersection,
    "division": ra.Division,
}


def decode_expression(data):
    tag = data["t"]
    if tag == "ref":
        return ra.RelationRef(data["name"])
    if tag == "constrel":
        return ra.ConstantRelation(_decode_relation(data["relation"]))
    if tag == "select":
        return ra.Selection(
            decode_expression(data["child"]), decode_condition(data["condition"])
        )
    if tag == "project":
        return ra.Projection(
            decode_expression(data["child"]), tuple(data["attributes"])
        )
    if tag == "rename":
        return ra.Rename(decode_expression(data["child"]), dict(data["mapping"]))
    if tag == "thetajoin":
        return ra.ThetaJoin(
            decode_expression(data["left"]),
            decode_expression(data["right"]),
            decode_condition(data["condition"]),
        )
    if tag in _BINARY:
        return _BINARY[tag](
            decode_expression(data["left"]), decode_expression(data["right"])
        )
    raise ValueError("unknown expression tag %r" % (tag,))


# ---------------------------------------------------------------------------
# Calculus formulas
# ---------------------------------------------------------------------------


def _encode_term(term):
    if isinstance(term, rc.Var):
        return ["var", term.name]
    return ["cst", term.value]


def _decode_term(data):
    tag, value = data
    return rc.Var(value) if tag == "var" else rc.Cst(value)


def encode_formula(formula):
    if isinstance(formula, rc.RelAtom):
        return {
            "t": "atom",
            "relation": formula.relation,
            "terms": [_encode_term(t) for t in formula.terms],
        }
    if isinstance(formula, rc.Compare):
        return {
            "t": "cmp",
            "left": _encode_term(formula.left),
            "op": formula.op,
            "right": _encode_term(formula.right),
        }
    if isinstance(formula, rc.AndF):
        return {"t": "and", "parts": [encode_formula(p) for p in formula.parts]}
    if isinstance(formula, rc.OrF):
        return {"t": "or", "parts": [encode_formula(p) for p in formula.parts]}
    if isinstance(formula, rc.NotF):
        return {"t": "not", "part": encode_formula(formula.part)}
    if isinstance(formula, rc.Exists):
        return {
            "t": "exists",
            "variables": list(formula.variables),
            "part": encode_formula(formula.part),
        }
    if isinstance(formula, rc.Forall):
        return {
            "t": "forall",
            "variables": list(formula.variables),
            "part": encode_formula(formula.part),
        }
    if isinstance(formula, rc.Implies):
        return {
            "t": "implies",
            "antecedent": encode_formula(formula.antecedent),
            "consequent": encode_formula(formula.consequent),
        }
    raise TypeError("cannot encode formula %r" % (formula,))


def decode_formula(data):
    tag = data["t"]
    if tag == "atom":
        return rc.RelAtom(
            data["relation"], [_decode_term(t) for t in data["terms"]]
        )
    if tag == "cmp":
        return rc.Compare(
            _decode_term(data["left"]), data["op"], _decode_term(data["right"])
        )
    if tag == "and":
        return rc.AndF(*[decode_formula(p) for p in data["parts"]])
    if tag == "or":
        return rc.OrF(*[decode_formula(p) for p in data["parts"]])
    if tag == "not":
        return rc.NotF(decode_formula(data["part"]))
    if tag == "exists":
        return rc.Exists(tuple(data["variables"]), decode_formula(data["part"]))
    if tag == "forall":
        return rc.Forall(tuple(data["variables"]), decode_formula(data["part"]))
    if tag == "implies":
        return rc.Implies(
            decode_formula(data["antecedent"]),
            decode_formula(data["consequent"]),
        )
    raise ValueError("unknown formula tag %r" % (tag,))


# ---------------------------------------------------------------------------
# Databases, fact stores, query atoms
# ---------------------------------------------------------------------------


def encode_database(db):
    return {
        name: {
            "attributes": list(db[name].schema.attributes),
            "rows": [list(row) for row in db[name].sorted_tuples()],
        }
        for name in db.names()
    }


def decode_database(data):
    db = Database()
    for name in sorted(data):
        entry = data[name]
        schema = RelationSchema(name, tuple(entry["attributes"]))
        db.add(Relation(schema, [tuple(row) for row in entry["rows"]]))
    return db


def encode_facts(edb):
    return {
        predicate: [list(row) for row in sorted(edb.get(predicate))]
        for predicate in sorted(edb.predicates())
    }


def decode_facts(data):
    store = FactStore()
    for predicate in sorted(data):
        for row in data[predicate]:
            store.add(predicate, tuple(row))
    return store


def _encode_query_atom(atom):
    return {
        "predicate": atom.predicate,
        "terms": [
            ["var", t.name] if isinstance(t, Variable) else ["const", t.value]
            for t in atom.terms
        ],
    }


def _decode_query_atom(data):
    terms = []
    for tag, value in data["terms"]:
        terms.append(Variable(value) if tag == "var" else value)
    return Atom(data["predicate"], tuple(terms))


# ---------------------------------------------------------------------------
# Cases
# ---------------------------------------------------------------------------


def encode_case(case):
    """The JSON-safe dictionary for one case."""
    payload = case.payload
    kind = payload.get("kind")
    if kind == "relational":
        encoded = {
            "kind": kind,
            "db": encode_database(payload["db"]),
            "expr": (
                encode_expression(payload["expr"])
                if payload.get("expr") is not None
                else None
            ),
            "sql": payload.get("sql"),
        }
        if payload.get("rewrites"):
            encoded["rewrites"] = list(payload["rewrites"])
    elif kind == "calculus":
        query = payload["query"]
        encoded = {
            "kind": kind,
            "db": encode_database(payload["db"]),
            "query": {
                "head": list(query.head),
                "formula": encode_formula(query.formula),
            },
        }
    elif kind == "datalog":
        encoded = {
            "kind": kind,
            "program": str(payload["program"]),
            "edb": encode_facts(payload["edb"]),
            "queries": [
                _encode_query_atom(q) for q in payload.get("queries", ())
            ],
        }
        if payload.get("mutations"):
            encoded["mutations"] = list(payload["mutations"])
        if payload.get("growth"):
            encoded["growth"] = {
                predicate: [list(row) for row in rows]
                for predicate, rows in payload["growth"].items()
            }
    elif kind == "schedule":
        encoded = {"kind": kind, "schedule": str(payload["schedule"])}
    elif kind == "transactions-live":
        encoded = {
            "kind": kind,
            "db": encode_database(payload["db"]),
            "programs": [list(program) for program in payload["programs"]],
            "order": list(payload["order"]),
            "commit_order": list(payload["commit_order"]),
        }
    else:
        raise TypeError("cannot encode payload kind %r" % (kind,))
    return {
        "format": FORMAT,
        "family": case.family,
        "seed": case.seed,
        "note": case.note,
        "constructs": list(case.constructs),
        "payload": encoded,
    }


def decode_case(data):
    """Rebuild a :class:`Case` from :func:`encode_case` output."""
    if data.get("format") != FORMAT:
        raise ValueError(
            "unsupported corpus format %r (expected %d)"
            % (data.get("format"), FORMAT)
        )
    encoded = data["payload"]
    kind = encoded.get("kind")
    if kind == "relational":
        payload = {
            "kind": kind,
            "db": decode_database(encoded["db"]),
            "expr": (
                decode_expression(encoded["expr"])
                if encoded.get("expr") is not None
                else None
            ),
            "sql": encoded.get("sql"),
        }
        if encoded.get("rewrites"):
            payload["rewrites"] = list(encoded["rewrites"])
    elif kind == "calculus":
        payload = {
            "kind": kind,
            "db": decode_database(encoded["db"]),
            "query": rc.Query(
                tuple(encoded["query"]["head"]),
                decode_formula(encoded["query"]["formula"]),
            ),
        }
    elif kind == "datalog":
        payload = {
            "kind": kind,
            "program": parse_program(encoded["program"])[0],
            "edb": decode_facts(encoded["edb"]),
            "queries": [
                _decode_query_atom(q) for q in encoded.get("queries", ())
            ],
        }
        if encoded.get("mutations"):
            payload["mutations"] = list(encoded["mutations"])
        if encoded.get("growth"):
            payload["growth"] = {
                predicate: [tuple(row) for row in rows]
                for predicate, rows in encoded["growth"].items()
            }
    elif kind == "schedule":
        payload = {"kind": kind, "schedule": parse_schedule(encoded["schedule"])}
    elif kind == "transactions-live":
        payload = {
            "kind": kind,
            "db": decode_database(encoded["db"]),
            "programs": [list(program) for program in encoded["programs"]],
            "order": list(encoded["order"]),
            "commit_order": list(encoded["commit_order"]),
        }
    else:
        raise ValueError("unknown corpus payload kind %r" % (kind,))
    return Case(
        data["family"],
        data["seed"],
        payload,
        data.get("constructs", ()),
        note=data.get("note", ""),
    )


# ---------------------------------------------------------------------------
# Directory layer
# ---------------------------------------------------------------------------


def save_case(case, directory, messages=(), name=None):
    """Write one corpus entry; returns the file path.

    The default file name is ``<family>-seed<seed>.json`` so re-finding
    the same case overwrites rather than accumulates.
    """
    os.makedirs(directory, exist_ok=True)
    data = encode_case(case)
    data["messages"] = list(messages)
    if name is None:
        name = "%s-seed%d" % (case.family, case.seed)
    path = os.path.join(directory, "%s.json" % name)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(directory):
    """All corpus entries, sorted by file name: ``[(path, case, messages)]``."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path) as handle:
            data = json.load(handle)
        entries.append((path, decode_case(data), data.get("messages", [])))
    return entries


def replay(case, oracles=None):
    """Re-run a corpus case through its family's oracle.

    Returns the divergence messages (empty list = the historical bug
    stays fixed).  A fresh oracle is built per call unless a prebuilt
    ``{family: oracle}`` mapping is supplied.
    """
    from .oracles import build_oracles

    if oracles is None:
        built = build_oracles([case.family])
        try:
            return built[0].check(case)
        finally:
            built[0].close()
    return oracles[case.family].check(case)
