"""``python -m repro.conformance`` — run a budgeted conformance sweep."""

import sys

from .driver import main

sys.exit(main())
