"""The conformance driver: budgeted fuzz runs with a JSON report.

``python -m repro.conformance --seconds 30 --seed 0`` round-robins the
oracle families, generating one deterministic case per (family, seed)
pair, checking it, and accounting coverage.  Divergences are shrunk
with the delta-debugging shrinker and persisted to the corpus
directory, so a red fuzz run leaves behind a small, replayable
regression file rather than a seed number in a log.

The run report is JSON (printed to stdout or ``--report FILE``):
cases run per family, wall-clock, per-construct coverage with the
unseen-construct audit, and every divergence with its shrunk size.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .corpus import encode_case, save_case
from .coverage import CoverageTracker
from .oracles import ORACLE_FAMILIES, build_oracles
from .shrinker import (
    case_size,
    crash_predicate,
    oracle_predicate,
    shrink_case,
)


def run_conformance(
    seconds=10.0,
    seed=0,
    families=None,
    corpus_dir=None,
    shrink=True,
    max_cases=None,
    registry=None,
):
    """Run a budgeted conformance sweep; returns the report dictionary.

    Cases are fully determined by ``(family, seed + offset)``, so a
    divergence reported by any run reproduces from its family and seed
    alone.  The time budget is checked between cases: a run never
    aborts a case mid-check.
    """
    oracles = build_oracles(families)
    tracker = CoverageTracker(registry=registry)
    deadline = time.monotonic() + seconds if seconds is not None else None
    start = time.monotonic()

    per_family = {
        oracle.family: {"cases": 0, "divergences": 0} for oracle in oracles
    }
    divergences = []
    offset = 0
    total = 0
    try:
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                break
            if max_cases is not None and total >= max_cases:
                break
            for oracle in oracles:
                if max_cases is not None and total >= max_cases:
                    break
                case = oracle.generate(seed + offset)
                tracker.observe(oracle.family, case.constructs)
                # A crash in a check is itself a divergence (one
                # evaluation path blew up on a legal workload) — record
                # it and keep fuzzing rather than killing the run.
                try:
                    messages = oracle.check(case)
                    crashed = False
                except Exception as error:
                    messages = ["oracle check raised: %r" % (error,)]
                    crashed = True
                per_family[oracle.family]["cases"] += 1
                total += 1
                if messages:
                    per_family[oracle.family]["divergences"] += 1
                    divergences.append(
                        _record_divergence(
                            oracle, case, messages, corpus_dir, shrink,
                            crashed=crashed,
                        )
                    )
            offset += 1
    finally:
        for oracle in oracles:
            oracle.close()

    report = {
        "seed": seed,
        "seconds": seconds,
        "elapsed": round(time.monotonic() - start, 3),
        "cases": total,
        "families": per_family,
        "divergences": divergences,
        "coverage": tracker.report(),
    }
    return report


def _record_divergence(oracle, case, messages, corpus_dir, shrink,
                       crashed=False):
    """Shrink a red case, persist it, and build its report entry."""
    entry = {
        "family": case.family,
        "seed": case.seed,
        "messages": list(messages),
        "size": case_size(case),
    }
    final = case
    if shrink:
        predicate = (
            crash_predicate(oracle) if crashed else oracle_predicate(oracle)
        )
        final = shrink_case(case, predicate)
        entry["shrunk_size"] = case_size(final)
        try:
            entry["shrunk_messages"] = oracle.check(final)
        except Exception as error:
            entry["shrunk_messages"] = ["shrunk check raised: %r" % (error,)]
    if corpus_dir is not None:
        entry["corpus_file"] = save_case(
            final, corpus_dir, messages=entry.get("shrunk_messages", messages)
        )
    else:
        entry["case"] = encode_case(final)
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description=(
            "Fuzz every evaluation path against the differential and "
            "metamorphic oracle registry."
        ),
    )
    parser.add_argument(
        "--seconds",
        type=float,
        default=10.0,
        help="time budget for the sweep (default: 10)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; case N of a family uses seed SEED+N (default: 0)",
    )
    parser.add_argument(
        "--families",
        default=None,
        help=(
            "comma-separated oracle families (default: all of %s)"
            % ", ".join(ORACLE_FAMILIES)
        ),
    )
    parser.add_argument(
        "--max-cases",
        type=int,
        default=None,
        help="stop after this many cases even if time remains",
    )
    parser.add_argument(
        "--corpus-dir",
        default=None,
        help="persist shrunk divergences into this directory",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report divergences at generated size (skip delta debugging)",
    )
    parser.add_argument(
        "--report",
        default=None,
        help="write the JSON run report here instead of stdout",
    )
    options = parser.parse_args(argv)

    families = None
    if options.families:
        families = [f.strip() for f in options.families.split(",") if f.strip()]
    report = run_conformance(
        seconds=options.seconds,
        seed=options.seed,
        families=families,
        corpus_dir=options.corpus_dir,
        shrink=not options.no_shrink,
        max_cases=options.max_cases,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if options.report:
        with open(options.report, "w") as handle:
            handle.write(text + "\n")
        summary = "%d cases, %d divergences, %.1fs -> %s" % (
            report["cases"],
            len(report["divergences"]),
            report["elapsed"],
            options.report,
        )
        print(summary)
    else:
        print(text)
    return 1 if report["divergences"] else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
