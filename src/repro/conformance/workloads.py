"""Seeded, size-parameterized workload generation for every front-end.

One :class:`Case` is one fuzzing unit: an oracle family name, the seed
that deterministically reproduces it, a payload (the concrete workload —
algebra expression + database, SQL text, Datalog program + EDB + query
atoms, or a transaction schedule), and the list of syntactic
*constructs* it exercises (consumed by
:class:`~repro.conformance.coverage.CoverageTracker`).

Everything here extends :mod:`repro.core.random_instances` — the
library-wide workload factory — rather than replacing it: the algebra
cases call :func:`~repro.core.random_instances.random_algebra_expression`
directly, the Datalog cases start from
:func:`~repro.core.random_instances.random_positive_program` and then
decorate it with the shapes that found historical bugs (program-text
facts of IDB and EDB predicates, stratified negation), and the schedule
cases drive :mod:`repro.transactions.workload`.
"""

from __future__ import annotations

import random
import zlib

from ..core.equivalence import random_safe_query
from ..core.random_instances import (
    random_algebra_expression,
    random_database,
    random_edb,
    random_positive_program,
)
from ..datalog.ast import Atom, Literal, Rule, Variable
from ..relational import algebra as ra
from ..relational.calculus import (
    AndF,
    Exists,
    Forall,
    Implies,
    NotF,
    OrF,
    RelAtom,
)
from ..transactions.workload import WorkloadConfig, generate_schedule


def derive_seed(tag, seed):
    """A stable sub-seed for ``(tag, seed)``.

    crc32 rather than ``hash()``: string hashing is randomized per
    process (PYTHONHASHSEED), and every case must regenerate bit-for-bit
    from its recorded seed in any process.
    """
    return (zlib.crc32(tag.encode("ascii")) * 1000003 + seed) % 2**63



class Case:
    """One conformance case: family, seed, payload, constructs."""

    __slots__ = ("family", "seed", "payload", "constructs", "note")

    def __init__(self, family, seed, payload, constructs, note=""):
        self.family = family
        self.seed = seed
        self.payload = payload
        self.constructs = sorted(set(constructs))
        self.note = note

    def __repr__(self):
        return "Case(%s, seed=%r, kind=%r)" % (
            self.family,
            self.seed,
            self.payload.get("kind"),
        )


# ---------------------------------------------------------------------------
# Construct extraction
# ---------------------------------------------------------------------------


def _condition_constructs(condition, out):
    if isinstance(condition, ra.Comparison):
        out.append("cond:%s" % condition.op)
        if isinstance(condition.right, ra.Attr) and isinstance(
            condition.left, ra.Attr
        ):
            out.append("cond:attr-attr")
        else:
            out.append("cond:attr-const")
    elif isinstance(condition, ra.And):
        out.append("cond:and")
        for part in condition.parts:
            _condition_constructs(part, out)
    elif isinstance(condition, ra.Or):
        out.append("cond:or")
        for part in condition.parts:
            _condition_constructs(part, out)
    elif isinstance(condition, ra.Not):
        out.append("cond:not")
        _condition_constructs(condition.part, out)


def _theta_shape(condition):
    """Classify a theta join's conjunct bundle."""
    comparisons = []
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, (ra.And, ra.Or)):
            stack.extend(node.parts)
        elif isinstance(node, ra.Not):
            stack.append(node.part)
        elif isinstance(node, ra.Comparison):
            comparisons.append(node)
    shapes = []
    equi = [
        c
        for c in comparisons
        if c.op == "="
        and isinstance(c.left, ra.Attr)
        and isinstance(c.right, ra.Attr)
    ]
    non_equi = [
        c
        for c in comparisons
        if c.op != "="
        and isinstance(c.left, ra.Attr)
        and isinstance(c.right, ra.Attr)
    ]
    if equi:
        shapes.append("theta:equi")
    if len(equi) >= 2:
        shapes.append("theta:multi-equi")
    if non_equi:
        shapes.append("theta:non-equi")
    return shapes


def expression_constructs(expr):
    """Construct labels of an algebra expression (tree walk)."""
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        out.append("node:%s" % type(node).__name__.lower())
        condition = getattr(node, "condition", None)
        if condition is not None:
            _condition_constructs(condition, out)
        if isinstance(node, ra.ThetaJoin):
            out.extend(_theta_shape(node.condition))
        if isinstance(node, ra.Division) and isinstance(
            node.right, ra.ConstantRelation
        ):
            if node.right.relation.schema.arity >= 2:
                out.append("divide:multi-attr")
        stack.extend(node.children())
    return out


def program_constructs(program, queries=()):
    """Construct labels of a Datalog program (+ query atoms)."""
    out = []
    idb = program.idb_predicates()
    for rule in program.rules:
        if not rule.body:
            if rule.head.predicate in idb:
                out.append("program:text-fact-idb")
            else:
                out.append("program:text-fact-edb")
            continue
        preds = {pred for pred, _ in rule.body_predicates()}
        out.append(
            "rule:recursive"
            if rule.head.predicate in preds
            else "rule:nonrecursive"
        )
        if rule.negative_literals():
            out.append("rule:negation")
    for query in queries:
        if query.is_ground() or any(
            not isinstance(t, Variable) for t in query.terms
        ):
            out.append("query:bound")
        else:
            out.append("query:free")
    return out


def formula_constructs(formula):
    """Construct labels of a calculus formula."""
    out = []
    atoms = 0
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, RelAtom):
            atoms += 1
            out.append("calc:atom")
        elif isinstance(node, AndF):
            out.append("calc:and")
            stack.extend(node.parts)
        elif isinstance(node, OrF):
            out.append("calc:or")
            stack.extend(node.parts)
        elif isinstance(node, NotF):
            out.append("calc:negation")
            stack.append(node.part)
        elif isinstance(node, Exists):
            out.append("calc:exists")
            stack.append(node.part)
        elif isinstance(node, Forall):
            out.append("calc:forall")
            stack.append(node.part)
        elif isinstance(node, Implies):
            out.append("calc:implies")
            stack.extend([node.antecedent, node.consequent])
    if atoms >= 2:
        out.append("calc:join")
    return out


def schedule_constructs(schedule, config):
    """Construct labels of a transaction schedule."""
    out = []
    for op in schedule.ops:
        if op.kind == "r":
            out.append("op:read")
        elif op.kind == "w":
            out.append("op:write")
    if config.write_ratio <= 0.25:
        out.append("workload:read-heavy")
    if config.write_ratio >= 0.75:
        out.append("workload:write-heavy")
    if config.hot_access_probability >= 0.5:
        out.append("workload:hot-contention")
    else:
        out.append("workload:uniform")
    return out


# ---------------------------------------------------------------------------
# Case generators (one per payload kind)
# ---------------------------------------------------------------------------


def relational_case(seed, family="relational-differential", size=None):
    """Random algebra expression + database (the executor fuzz unit)."""
    rng = random.Random(derive_seed("relational", seed))
    db = random_database(
        num_relations=rng.randint(2, 4),
        arity=2,
        rows=rng.randint(5, 9),
        domain_size=rng.randint(4, 6),
        seed=rng.randrange(10**9),
    )
    expr = random_algebra_expression(
        db,
        seed=rng.randrange(10**9),
        size=size if size is not None else rng.randint(1, 6),
    )
    payload = {"kind": "relational", "db": db, "expr": expr, "sql": None}
    return Case(family, seed, payload, expression_constructs(expr))


def sql_case(seed, family="relational-differential"):
    """Random SQL text over a random database.

    SELECT blocks with multi-table FROM lists, compound WHERE
    conditions (AND/OR/NOT, attribute and literal operands), and
    optional set operations between union-compatible blocks.
    """
    rng = random.Random(derive_seed("sql", seed))
    db = random_database(
        num_relations=rng.randint(2, 3),
        arity=2,
        rows=rng.randint(5, 9),
        domain_size=rng.randint(4, 6),
        seed=rng.randrange(10**9),
    )
    schema = db.schema()
    names = db.names()
    constructs = ["sql:select"]

    froms = []
    for index in range(rng.randint(1, 3)):
        name = rng.choice(names)
        froms.append(("t%d" % index, name))
    if len(froms) > 1:
        constructs.append("sql:join")
    columns = [
        "%s.%s" % (alias, attr)
        for alias, name in froms
        for attr in schema[name].attributes
    ]
    # Output columns are named by the bare attribute, so the select
    # list must not repeat one (the parser rejects name clashes).
    by_output = {}
    for column in columns:
        by_output.setdefault(column.split(".")[1], []).append(column)
    outputs = rng.sample(
        sorted(by_output), rng.randint(1, min(3, len(by_output)))
    )
    select_list = sorted(rng.choice(by_output[o]) for o in outputs)

    def atom():
        left = rng.choice(columns)
        if rng.random() < 0.5 and len(columns) > 1:
            right = rng.choice([c for c in columns if c != left])
        else:
            right = str(rng.randrange(6))
            constructs.append("sql:literal")
        return "%s %s %s" % (
            left,
            rng.choice(("=", "!=", "<", "<=", ">", ">=")),
            right,
        )

    def where():
        condition = atom()
        roll = rng.random()
        if roll < 0.25:
            condition = "%s AND %s" % (condition, atom())
        elif roll < 0.45:
            condition = "(%s OR %s)" % (condition, atom())
            constructs.append("sql:or")
        elif roll < 0.55:
            condition = "NOT (%s)" % condition
            constructs.append("sql:not")
        return condition

    def block():
        text = "SELECT %s FROM %s" % (
            ", ".join(select_list),
            ", ".join("%s %s" % (name, alias) for alias, name in froms),
        )
        if rng.random() < 0.8:
            text += " WHERE %s" % where()
            constructs.append("sql:where")
        return text

    text = block()
    if rng.random() < 0.3:
        text = "%s %s %s" % (
            text,
            rng.choice(("UNION", "INTERSECT", "EXCEPT")),
            block(),
        )
        constructs.append("sql:set-op")
    payload = {"kind": "relational", "db": db, "expr": None, "sql": text}
    return Case(family, seed, payload, constructs)


def calculus_case(seed, family="calculus-differential"):
    """Random safe-range calculus query + database (Codd's theorem)."""
    rng = random.Random(derive_seed("calculus", seed))
    db = random_database(
        num_relations=rng.randint(2, 3),
        arity=2,
        rows=rng.randint(4, 8),
        domain_size=rng.randint(3, 5),
        seed=rng.randrange(10**9),
    )
    query = random_safe_query(db, seed=rng.randrange(10**9))
    payload = {"kind": "calculus", "db": db, "query": query}
    return Case(family, seed, payload, formula_constructs(query.formula))


def datalog_case(seed, family="datalog-differential"):
    """Random stratified Datalog program + EDB + query atoms.

    Starts from the positive-program generator and decorates it with
    the shapes behind historical cross-engine bugs: ground facts in the
    program text (for both IDB and EDB predicates — the facts magic and
    top-down once dropped) and a stratified negation stratum.
    """
    rng = random.Random(derive_seed("datalog", seed))
    num_idb = rng.randint(2, 3)
    program = random_positive_program(
        num_idb=num_idb,
        num_edb=2,
        rules_per_idb=rng.randint(1, 2),
        max_body=rng.randint(2, 3),
        arity=2,
        seed=rng.randrange(10**9),
    )
    domain = 5
    edb = random_edb(
        ["e0", "e1"],
        domain_size=domain,
        facts_per_pred=rng.randint(5, 10),
        arity=2,
        seed=rng.randrange(10**9),
    )
    extra = []
    if rng.random() < 0.5:
        extra.append(
            Rule(Atom("p0", (rng.randrange(domain), rng.randrange(domain))))
        )
    if rng.random() < 0.5:
        extra.append(
            Rule(Atom("e0", (rng.randrange(domain), rng.randrange(domain))))
        )
    if rng.random() < 0.4:
        # A fresh top stratum: safe (head variables bound positively),
        # stratified (nothing references neg0).
        extra.append(
            Rule(
                Atom("neg0", (Variable("X"), Variable("Y"))),
                [
                    Literal(Atom("e0", (Variable("X"), Variable("Y")))),
                    Literal(
                        Atom("p0", (Variable("X"), Variable("Y"))),
                        positive=False,
                    ),
                ],
            )
        )
    if extra:
        program = program.extend(extra)
    queries = []
    predicates = ["p%d" % i for i in range(num_idb)]
    if any(rule.head.predicate == "neg0" for rule in program.rules):
        predicates.append("neg0")
    for predicate in predicates:
        queries.append(Atom(predicate, (Variable("Q1"), Variable("Q2"))))
        if rng.random() < 0.6:
            queries.append(
                Atom(predicate, (rng.randrange(domain), Variable("Q2")))
            )
    payload = {
        "kind": "datalog",
        "program": program,
        "edb": edb,
        "queries": queries,
    }
    return Case(family, seed, payload, program_constructs(program, queries))


def transactions_live_case(seed, family="transactions-live"):
    """Random concurrent SQL transaction workload for the live runtime.

    Unlike the ``transactions-differential`` family (abstract schedules
    fed to scheduler *simulators*), this one drives the real thing: a
    seeded interleaving of INSERT/DELETE/UPDATE/SELECT statements across
    several live ``wb.begin()`` transactions over a random database.
    The payload is pure data (SQL text + orderings), so the same case
    replays identically under every concurrency control.
    """
    rng = random.Random(derive_seed("txn-live", seed))
    db = random_database(
        num_relations=rng.randint(2, 3),
        arity=2,
        rows=rng.randint(4, 8),
        domain_size=rng.randint(3, 5),
        seed=rng.randrange(10**9),
    )
    schema = db.schema()
    names = db.names()
    domain = 6
    constructs = []

    def statement():
        name = rng.choice(names)
        attrs = schema[name].attributes
        roll = rng.random()
        if roll < 0.35:
            constructs.append("live:insert")
            values = ", ".join(
                str(rng.randrange(domain)) for _ in attrs
            )
            return "INSERT INTO %s VALUES (%s)" % (name, values)
        if roll < 0.55:
            constructs.append("live:delete")
            return "DELETE FROM %s WHERE %s = %d" % (
                name, attrs[0], rng.randrange(domain)
            )
        if roll < 0.75:
            constructs.append("live:update")
            return "UPDATE %s SET %s = %d WHERE %s = %d" % (
                name, attrs[1], rng.randrange(domain),
                attrs[0], rng.randrange(domain),
            )
        constructs.append("live:select")
        return "SELECT * FROM %s" % name

    programs = [
        [statement() for _ in range(rng.randint(1, 3))]
        for _ in range(rng.randint(2, 4))
    ]
    if len(programs) > 2:
        constructs.append("live:multi-txn")

    # A seeded interleaving: which transaction issues its next
    # statement at each step.
    order = []
    remaining = [len(program) for program in programs]
    while any(remaining):
        pick = rng.choice(
            [i for i, count in enumerate(remaining) if count]
        )
        order.append(pick)
        remaining[pick] -= 1
    commit_order = list(range(len(programs)))
    rng.shuffle(commit_order)

    payload = {
        "kind": "transactions-live",
        "db": db,
        "programs": programs,
        "order": order,
        "commit_order": commit_order,
    }
    return Case(family, seed, payload, constructs)


def schedule_case(seed, family="transactions-differential"):
    """Random transaction schedule under a contention-swept workload."""
    rng = random.Random(derive_seed("schedule", seed))
    config = WorkloadConfig(
        num_transactions=rng.randint(3, 6),
        ops_per_transaction=rng.randint(2, 5),
        num_items=rng.randint(3, 8),
        write_ratio=rng.choice((0.1, 0.5, 0.9)),
        hot_fraction=0.25,
        hot_access_probability=rng.choice((0.0, 0.7)),
        seed=rng.randrange(10**9),
    )
    schedule = generate_schedule(
        config, interleave_seed=rng.randrange(10**9)
    )
    payload = {"kind": "schedule", "schedule": schedule}
    return Case(
        family, seed, payload, schedule_constructs(schedule, config)
    )


#: Metamorphic rewrite names for relational cases (implemented in
#: ``oracles.py``); the generator picks a deterministic subset.
RELATIONAL_REWRITES = (
    "commute-selections",
    "fuse-selections",
    "collapse-projection",
    "select-union-distribute",
    "union-commute",
    "intersection-commute",
    "join-commute",
    "difference-complement",
    "semijoin-definition",
    "antijoin-definition",
    "union-idempotent",
)

#: Metamorphic mutation names for Datalog cases.
DATALOG_MUTATIONS = (
    "duplicate-literal",
    "satisfied-guard",
    "rule-shuffle",
    "variable-rename",
    "monotone-growth",
)


def metamorphic_relational_case(seed):
    """A relational case plus a deterministic set of rewrites to apply."""
    case = relational_case(seed, family="metamorphic-relational")
    rng = random.Random(derive_seed("mm-rel", seed))
    rewrites = sorted(
        rng.sample(RELATIONAL_REWRITES, rng.randint(2, 4))
    )
    case.payload["rewrites"] = rewrites
    case.constructs = sorted(
        set(case.constructs) | {"mm:%s" % r for r in rewrites}
    )
    return case


def metamorphic_optimizer_case(seed):
    """A relational case plus single-rule optimizer toggles to apply.

    Each named toggle disables exactly one rewrite rule of the unified
    optimizer; the oracle demands the answer is invariant.  The subset
    is seed-derived so a recorded case replays bit-for-bit.
    """
    from ..opt import rule_names

    case = relational_case(seed, family="metamorphic-optimizer")
    rng = random.Random(derive_seed("mm-opt", seed))
    names = rule_names()
    toggles = sorted(rng.sample(names, rng.randint(2, min(4, len(names)))))
    case.payload["toggle_rules"] = toggles
    case.constructs = sorted(
        set(case.constructs) | {"mm:no-%s" % rule for rule in toggles}
    )
    return case


def metamorphic_datalog_case(seed):
    """A Datalog case plus mutations (guards, growth, shuffles)."""
    case = datalog_case(seed, family="metamorphic-datalog")
    rng = random.Random(derive_seed("mm-dl", seed))
    mutations = sorted(rng.sample(DATALOG_MUTATIONS, rng.randint(2, 3)))
    growth = {}
    if "monotone-growth" in mutations:
        for predicate in ("e0", "e1"):
            growth[predicate] = sorted(
                {
                    (rng.randrange(5), rng.randrange(5))
                    for _ in range(rng.randint(1, 4))
                }
            )
    case.payload["mutations"] = mutations
    case.payload["growth"] = growth
    case.constructs = sorted(
        set(case.constructs) | {"mm:%s" % m for m in mutations}
    )
    return case


#: Family name -> generator callable. The driver round-robins these;
#: the workload mix of the relational-differential family alternates
#: between raw algebra and SQL text on the case seed's parity.
def _relational_mixed(seed):
    if seed % 3 == 2:
        return sql_case(seed)
    return relational_case(seed)


GENERATORS = {
    "relational-differential": _relational_mixed,
    "calculus-differential": calculus_case,
    "datalog-differential": datalog_case,
    "transactions-differential": schedule_case,
    "transactions-live": transactions_live_case,
    "metamorphic-relational": metamorphic_relational_case,
    "metamorphic-datalog": metamorphic_datalog_case,
    "metamorphic-optimizer": metamorphic_optimizer_case,
}


def generate_case(family, seed):
    """Generate the deterministic case for ``(family, seed)``."""
    try:
        generator = GENERATORS[family]
    except KeyError:
        raise ValueError(
            "unknown oracle family %r (known: %s)"
            % (family, ", ".join(sorted(GENERATORS)))
        )
    return generator(seed)
