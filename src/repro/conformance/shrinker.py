"""Delta-debugging shrinker for conformance cases.

When an oracle reports a divergence, the generated case is usually far
larger than the bug it witnesses.  This module reduces a failing
:class:`~repro.conformance.workloads.Case` to a small one that still
fails, combining two classical techniques:

* **Structural reduction** of the syntactic object — replace any
  algebra subexpression by one of its children (hoisting), drop Datalog
  rules and body literals, drop transactions and operations from a
  schedule.
* **ddmin fact bisection** — Zeller's greedy chunk-removal minimization
  over flat element lists: relation tuples, EDB facts, query atoms,
  metamorphic rewrite lists.

The caller supplies ``still_fails(case) -> bool``.  Candidate cases can
be structurally invalid (a dropped literal may break rule safety, a
dropped relation may be referenced by the expression); candidate
*construction* is guarded here, and the predicate itself is expected to
treat "the oracle raised" as "does not reproduce" (see
:func:`oracle_predicate`).
"""

from __future__ import annotations

from ..datalog.ast import Rule
from ..datalog.facts import FactStore
from ..relational import algebra as ra
from ..relational.relation import Relation
from ..transactions.schedule import Schedule
from .workloads import Case


def expression_depth(expr):
    """Height of an algebra expression tree (a leaf has depth 1)."""
    return 1 + max(
        (expression_depth(child) for child in expr.children()), default=0
    )


def expression_size(expr):
    """Node count of an algebra expression tree."""
    return 1 + sum(expression_size(child) for child in expr.children())


def oracle_predicate(oracle):
    """``still_fails`` from an oracle: divergence messages = still red.

    Any exception from the check counts as "does not reproduce" — the
    shrinker probes structurally risky candidates on purpose, and an
    oracle crash on an invalid candidate must not be mistaken for the
    original divergence.
    """

    def still_fails(case):
        try:
            return bool(oracle.check(case))
        except Exception:
            return False

    return still_fails


def crash_predicate(oracle):
    """``still_fails`` for cases whose *check itself* raises.

    The dual of :func:`oracle_predicate`: when the recorded failure is
    an oracle crash (one evaluation path threw — e.g. an optimizer
    producing a schema-invalid plan), a candidate reproduces exactly
    when the check still raises.
    """

    def still_fails(case):
        try:
            oracle.check(case)
        except Exception:
            return True
        return False

    return still_fails


def ddmin_list(items, test):
    """Greedy ddmin: the smallest sublist (in order) with ``test`` true.

    ``test`` receives candidate lists; ``items`` itself is assumed to
    pass.  Classic chunk-removal schedule: try dropping chunks of half
    the list, halve the chunk size when stuck, finish with repeated
    single-element passes until a fixpoint.
    """
    items = list(items)
    chunk = max(1, len(items) // 2)
    while items:
        start = 0
        reduced = False
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if test(candidate):
                items = candidate
                reduced = True
            else:
                start += chunk
        if chunk == 1:
            if not reduced:
                break
        else:
            chunk = max(1, chunk // 2)
    return items


class _Budget:
    """Caps the number of oracle probes a shrink may spend."""

    __slots__ = ("remaining",)

    def __init__(self, max_checks):
        self.remaining = max_checks

    def spend(self):
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _guarded(test, budget):
    """Wrap a predicate: respect the budget, absorb construction errors."""

    def probe(thunk):
        if not budget.spend():
            return None
        try:
            candidate = thunk()
        except Exception:
            return None
        return candidate if test(candidate) else None

    return probe


def _with_payload(case, **updates):
    payload = dict(case.payload)
    payload.update(updates)
    return Case(
        case.family,
        case.seed,
        payload,
        case.constructs,
        note=case.note or "shrunk",
    )


# ---------------------------------------------------------------------------
# Algebra expression reduction
# ---------------------------------------------------------------------------


def _replace_node(expr, target, replacement):
    """A copy of ``expr`` with the node ``target`` (by identity) swapped."""
    if expr is target:
        return replacement
    if isinstance(expr, ra.Selection):
        return ra.Selection(
            _replace_node(expr.child, target, replacement), expr.condition
        )
    if isinstance(expr, ra.Projection):
        return ra.Projection(
            _replace_node(expr.child, target, replacement), expr.attributes
        )
    if isinstance(expr, ra.Rename):
        return ra.Rename(
            _replace_node(expr.child, target, replacement), expr.mapping
        )
    if isinstance(expr, ra.ThetaJoin):
        return ra.ThetaJoin(
            _replace_node(expr.left, target, replacement),
            _replace_node(expr.right, target, replacement),
            expr.condition,
        )
    if isinstance(expr, ra._Binary):
        return type(expr)(
            _replace_node(expr.left, target, replacement),
            _replace_node(expr.right, target, replacement),
        )
    return expr  # leaves: RelationRef, ConstantRelation


def _all_nodes(expr):
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(node.children())
    return out


def _shrink_expression(case, probe):
    """Hoist children over their parents while the case stays red.

    One pass per round: for every internal node, try replacing it with
    each of its children (a strict size reduction that preserves
    well-formedness whenever schemas happen to line up — the probe
    guards the rest).  Rounds repeat until a fixpoint.
    """
    best = case
    changed = True
    while changed and best.payload.get("expr") is not None:
        changed = False
        expr = best.payload["expr"]
        for node in _all_nodes(expr):
            for child in node.children():
                candidate = probe(
                    lambda n=node, c=child, e=expr: _with_payload(
                        best, expr=_replace_node(e, n, c)
                    )
                )
                if candidate is not None:
                    best = candidate
                    changed = True
                    break
            if changed:
                break
    return best


def _shrink_database(case, probe):
    """Drop whole relations, then ddmin each survivor's tuple list."""
    best = case

    for name in list(best.payload["db"].names()):
        db = best.payload["db"].copy()
        db.remove(name)
        candidate = probe(lambda d=db: _with_payload(best, db=d))
        if candidate is not None:
            best = candidate

    for name in best.payload["db"].names():
        relation = best.payload["db"][name]

        def keeps_failing(tuples, name=name, schema=relation.schema):
            db = best.payload["db"].copy()
            db.replace(Relation(schema, tuples))
            candidate = probe(lambda d=db: _with_payload(best, db=d))
            return candidate is not None

        kept = ddmin_list(list(relation.tuples), keeps_failing)
        db = best.payload["db"].copy()
        db.replace(Relation(relation.schema, kept))
        candidate = probe(lambda d=db: _with_payload(best, db=d))
        if candidate is not None:
            best = candidate
    return best


def _shrink_list_field(case, probe, field):
    """ddmin a list-valued payload field (rewrites, mutations, queries)."""
    values = case.payload.get(field)
    if not values:
        return case
    holder = {"best": case}

    def keeps_failing(subset):
        candidate = probe(
            lambda s=subset: _with_payload(holder["best"], **{field: list(s)})
        )
        if candidate is not None:
            holder["best"] = candidate
            return True
        return False

    ddmin_list(list(values), keeps_failing)
    return holder["best"]


# ---------------------------------------------------------------------------
# Datalog reduction
# ---------------------------------------------------------------------------


def _facts_list(edb):
    return [
        (predicate, values)
        for predicate in sorted(edb.predicates())
        for values in sorted(edb.get(predicate))
    ]


def _facts_store(pairs):
    store = FactStore()
    for predicate, values in pairs:
        store.add(predicate, values)
    return store


def _shrink_datalog(case, probe):
    best = case

    # Rules: ddmin over the program text's rule list.
    program = best.payload["program"]
    holder = {"best": best}

    def rules_fail(rules):
        candidate = probe(
            lambda r=rules: _with_payload(
                holder["best"], program=type(program)(list(r))
            )
        )
        if candidate is not None:
            holder["best"] = candidate
            return True
        return False

    ddmin_list(list(program.rules), rules_fail)
    best = holder["best"]

    # Body literals: try dropping each element of each rule's body (the
    # probe absorbs the safety errors this can raise).
    changed = True
    while changed:
        changed = False
        rules = list(best.payload["program"].rules)
        for i, rule in enumerate(rules):
            if not rule.body:
                continue
            for j in range(len(rule.body)):
                body = list(rule.body)
                del body[j]

                def build(i=i, rule=rule, body=body, rules=rules):
                    slimmed = list(rules)
                    slimmed[i] = Rule(rule.head, body)
                    return _with_payload(
                        best,
                        program=type(best.payload["program"])(slimmed),
                    )

                candidate = probe(build)
                if candidate is not None:
                    best = candidate
                    changed = True
                    break
            if changed:
                break

    # Queries: ddmin the query-atom list (keep at least the failing one).
    best = _shrink_list_field(best, probe, "queries")

    # EDB facts: the greedy fact-set bisection.
    holder = {"best": best}

    def facts_fail(pairs):
        candidate = probe(
            lambda p=pairs: _with_payload(holder["best"], edb=_facts_store(p))
        )
        if candidate is not None:
            holder["best"] = candidate
            return True
        return False

    ddmin_list(_facts_list(best.payload["edb"]), facts_fail)
    best = holder["best"]

    # Metamorphic extras.
    best = _shrink_list_field(best, probe, "mutations")
    growth = best.payload.get("growth")
    if growth:
        for predicate in sorted(growth):
            holder = {"best": best}

            def rows_fail(rows, predicate=predicate):
                new_growth = dict(holder["best"].payload["growth"])
                new_growth[predicate] = list(rows)
                candidate = probe(
                    lambda g=new_growth: _with_payload(
                        holder["best"], growth=g
                    )
                )
                if candidate is not None:
                    holder["best"] = candidate
                    return True
                return False

            ddmin_list(list(growth[predicate]), rows_fail)
            best = holder["best"]
    return best


# ---------------------------------------------------------------------------
# Schedule reduction
# ---------------------------------------------------------------------------


def _shrink_schedule(case, probe):
    best = case
    schedule = best.payload["schedule"]

    # First whole transactions (keeps the schedule well-formed), then
    # individual operations (dropping ops cannot introduce an
    # op-after-terminal violation, so candidates stay valid).
    for txn in list(schedule.transactions()):
        ops = [op for op in best.payload["schedule"].ops if op.txn != txn]
        candidate = probe(
            lambda o=ops: _with_payload(best, schedule=Schedule(o))
        )
        if candidate is not None:
            best = candidate

    holder = {"best": best}

    def ops_fail(ops):
        candidate = probe(
            lambda o=ops: _with_payload(holder["best"], schedule=Schedule(o))
        )
        if candidate is not None:
            holder["best"] = candidate
            return True
        return False

    ddmin_list(list(best.payload["schedule"].ops), ops_fail)
    return holder["best"]


# ---------------------------------------------------------------------------
# Live-transaction reduction
# ---------------------------------------------------------------------------


def _shrink_live_txn(case, probe):
    """Reduce a live-transaction case: whole transactions, then
    individual statements (the interleaving orders are remapped so the
    candidate payload stays well-formed)."""
    best = case

    def without_txn(payload, drop):
        remap = {}
        for index in range(len(payload["programs"])):
            if index != drop:
                remap[index] = len(remap)
        return {
            "programs": [
                program
                for index, program in enumerate(payload["programs"])
                if index != drop
            ],
            "order": [remap[i] for i in payload["order"] if i != drop],
            "commit_order": [
                remap[i] for i in payload["commit_order"] if i != drop
            ],
        }

    def without_statement(payload, txn, position):
        programs = [list(program) for program in payload["programs"]]
        del programs[txn][position]
        order, seen = [], 0
        for index in payload["order"]:
            if index == txn:
                if seen == position:
                    seen += 1
                    continue
                seen += 1
            order.append(index)
        return {"programs": programs, "order": order}

    shrinking = True
    while shrinking:
        shrinking = False
        for drop in range(len(best.payload["programs"])):
            if len(best.payload["programs"]) <= 1:
                break
            candidate = probe(
                lambda d=drop: _with_payload(
                    best, **without_txn(best.payload, d)
                )
            )
            if candidate is not None:
                best = candidate
                shrinking = True
                break
        if shrinking:
            continue
        for txn, program in enumerate(best.payload["programs"]):
            if len(program) <= 1:
                continue
            for position in range(len(program)):
                candidate = probe(
                    lambda t=txn, p=position: _with_payload(
                        best, **without_statement(best.payload, t, p)
                    )
                )
                if candidate is not None:
                    best = candidate
                    shrinking = True
                    break
            if shrinking:
                break
    return best


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def shrink_case(case, still_fails, max_checks=2000):
    """Reduce a failing case; returns the smallest still-failing case.

    ``still_fails`` must be true for ``case`` itself; if it is not, the
    case is returned unchanged (nothing to minimize against).  The probe
    budget ``max_checks`` caps oracle invocations, so shrinking a
    pathological case degrades to "best effort so far" rather than
    hanging a fuzz run.
    """
    try:
        if not still_fails(case):
            return case
    except Exception:
        return case

    budget = _Budget(max_checks)
    probe = _guarded(still_fails, budget)
    best = case
    kind = case.payload.get("kind")

    if kind == "relational":
        if best.payload.get("expr") is not None:
            best = _shrink_expression(best, probe)
        best = _shrink_list_field(best, probe, "rewrites")
        best = _shrink_database(best, probe)
        # A smaller database sometimes unlocks further tree hoists.
        if best.payload.get("expr") is not None:
            best = _shrink_expression(best, probe)
    elif kind == "calculus":
        best = _shrink_database(best, probe)
    elif kind == "datalog":
        best = _shrink_datalog(best, probe)
    elif kind == "schedule":
        best = _shrink_schedule(best, probe)
    elif kind == "transactions-live":
        best = _shrink_live_txn(best, probe)
    return best


def case_size(case):
    """A scalar size measure (used to report shrink ratios)."""
    payload = case.payload
    kind = payload.get("kind")
    if kind == "relational":
        size = payload["db"].total_tuples()
        if payload.get("expr") is not None:
            size += expression_size(payload["expr"])
        return size
    if kind == "calculus":
        return payload["db"].total_tuples()
    if kind == "datalog":
        return len(payload["program"].rules) + payload["edb"].count()
    if kind == "schedule":
        return len(payload["schedule"].ops)
    if kind == "transactions-live":
        return payload["db"].total_tuples() + sum(
            len(program) for program in payload["programs"]
        )
    return 0
