"""The oracle registry: differential and metamorphic correctness checks.

Every oracle consumes a :class:`~repro.conformance.workloads.Case` and
returns a list of divergence messages (empty = the metatheorems held on
this case).  Two oracle kinds:

* **Differential** — run one workload through every applicable
  evaluation path and demand agreement: legacy tree walk vs. streaming
  executor vs. fused compiled kernels vs. optimized plan vs. cost-gated
  parallel backend; direct
  calculus semantics vs. Codd-translated algebra; all four Datalog
  strategies under both physical configurations (plus the lowered
  pipeline and the sharded semi-naive backend); 2PL / timestamp / OCC
  scheduler outputs against the serializability predicates.
* **Metamorphic** — apply a semantics-preserving rewrite and demand the
  result is unchanged: commuting and fusing selections, distributing
  selections over unions, set-operation and join commutativity,
  semijoin/antijoin definitional expansions, duplicated and satisfied
  guard atoms in Datalog rules, rule shuffles, variable renamings,
  monotone EDB growth for positive programs — and single-rule toggles
  of the unified optimizer (disabling any one rewrite rule must never
  change a query's answer, only its plan).

The checks deliberately route through the *public* entry points the
rest of the library uses (``evaluate``, ``execute``, ``canonicalize``,
the :class:`repro.opt.Optimizer`, the engine evaluators, the scheduler
one-shots), so a conformance run exercises the same code paths
production queries take.
"""

from __future__ import annotations

from ..datalog.engine import DatalogEngine
from ..datalog.lowering import is_lowerable, lowered_evaluate
from ..datalog.magic import magic_evaluate, match_query
from ..datalog.naive import naive_evaluate
from ..datalog.seminaive import seminaive_evaluate
from ..datalog.topdown import topdown_query
from ..relational import algebra as ra
from ..relational.algebra import evaluate
from ..relational.calculus import evaluate_query
from ..relational.codd import calculus_to_algebra
from ..opt import Optimizer
from ..relational.relation import same_content
from ..relational.sql_frontend import parse_sql
from ..compile import KernelCache
from ..plan import canonicalize, execute
from ..transactions import (
    is_conflict_serializable,
    is_recoverable,
    is_strict,
    is_view_serializable,
    optimistic,
    timestamp_order,
    two_phase_lock,
)
from ..transactions.schedule import Op, Schedule
from .workloads import derive_seed, generate_case

import random

#: One shared full-pipeline optimizer (the workbench default): catalog
#: statistics, every rewrite rule, DP/greedy ordering, Yannakakis
#: routing.  The differential leg runs whatever plans it emits.
_FULL_PIPELINE = Optimizer()

#: One shared kernel cache for the compiled-execution leg.  Shared
#: across cases on purpose: repeated plan shapes replay cached kernels
#: (exercising the reuse path), and every refused plan lands in the
#: cache's ``fallback_runs`` counter — fallbacks are *counted*, never
#: silent, so a sweep report can show how much of the corpus compiled.
_KERNEL_CACHE = KernelCache(capacity=512)


class Divergence(Exception):
    """Raised internally by checks; the oracle turns it into a message."""


class Oracle:
    """Base oracle: a named family with generate/check/close."""

    family = None

    def generate(self, seed):
        return generate_case(self.family, seed)

    def check(self, case):
        """Divergence messages for one case (empty list = conformant)."""
        raise NotImplementedError

    def close(self):
        """Release any long-lived resources (worker pools)."""


def _relation_diff(label, left, right):
    return "%s: %d vs %d tuples (symmetric difference %d)" % (
        label,
        len(left),
        len(right),
        len(set(left.tuples) ^ set(right.tuples)),
    )


class _ParallelMixin:
    """Lazily-built shared parallel backend (2 workers, gate forced open)."""

    _backend = None

    def backend(self):
        if self._backend is None:
            from ..parallel import ParallelBackend

            self._backend = ParallelBackend(
                workers=2, cost_gate=0, round_gate=0, timeout=60.0
            )
        return self._backend

    def close(self):
        if self._backend is not None:
            self._backend.close()
            self._backend = None


class RelationalDifferentialOracle(_ParallelMixin, Oracle):
    """Tree walk ≡ streaming executor ≡ compiled ≡ optimized (≡ parallel).

    The compiled leg resolves each canonical plan against a shared
    :class:`~repro.compile.KernelCache` and, when the generator accepts
    the shape, demands the fused kernel's result be *identical* to the
    streaming executor's; refused plans run interpreted-only and count
    in the cache's fallback counters (never silently skipped).

    The parallel comparison runs on every fourth case (per seed) so a
    budgeted fuzz run still spends most of its time on the cheap
    comparisons; the gate-forced backend partitions every plan it
    structurally can, falling back to serial execution otherwise —
    both paths must agree with the serial executor.
    """

    family = "relational-differential"

    def resolve(self, case):
        """The algebra expression of a relational payload."""
        payload = case.payload
        if payload.get("expr") is not None:
            return payload["expr"]
        return parse_sql(payload["sql"])

    def check(self, case):
        payload = case.payload
        db = payload["db"]
        expr = self.resolve(case)
        strict = payload.get("sql") is None  # SQL column order may differ
        messages = []

        legacy = evaluate(expr, db)
        canonical = canonicalize(expr, db.schema())
        streamed = execute(canonical, db)
        if strict and streamed != legacy:
            messages.append(
                _relation_diff("executor vs tree walk", streamed, legacy)
            )
        elif not strict and not same_content(streamed, legacy):
            messages.append(
                _relation_diff("executor vs tree walk", streamed, legacy)
            )

        kernel, _reason = _KERNEL_CACHE.resolve(canonical, db)
        if kernel is not None:
            compiled, _tally = kernel.execute(db)
            if compiled != streamed:
                messages.append(
                    _relation_diff(
                        "compiled kernel vs executor", compiled, streamed
                    )
                )

        optimized_plan = canonicalize(
            _FULL_PIPELINE.optimize(canonical, db), db.schema()
        )
        optimized = execute(optimized_plan, db)
        if not same_content(optimized, legacy):
            messages.append(
                _relation_diff("optimized plan vs tree walk", optimized, legacy)
            )

        if case.seed % 4 == 0:
            relation, _info = self.backend().execute_plan(canonical, db)
            if relation != streamed:
                messages.append(
                    _relation_diff(
                        "parallel backend vs executor", relation, streamed
                    )
                )
        return messages


class CalculusDifferentialOracle(Oracle):
    """Codd's theorem, executable: direct safe-range calculus semantics
    ≡ translated algebra on the tree walk ≡ the same on the executor."""

    family = "calculus-differential"

    def check(self, case):
        payload = case.payload
        db = payload["db"]
        query = payload["query"]
        messages = []
        direct = evaluate_query(query, db)
        expr = calculus_to_algebra(query, db.schema())
        translated = evaluate(expr, db)
        if direct.tuples != translated.tuples or (
            direct.schema.attributes != translated.schema.attributes
        ):
            messages.append(
                _relation_diff(
                    "calculus semantics vs translated algebra",
                    direct,
                    translated,
                )
            )
        streamed = execute(canonicalize(expr, db.schema()), db)
        if streamed.tuples != direct.tuples:
            messages.append(
                _relation_diff(
                    "calculus semantics vs executor", streamed, direct
                )
            )
        return messages


#: (indexed, planned) physical configurations for the Datalog sweep.
DATALOG_CONFIGS = ((True, True), (False, False))


class DatalogDifferentialOracle(_ParallelMixin, Oracle):
    """Naive ≡ semi-naive ≡ magic ≡ top-down ≡ lowered (≡ sharded).

    Magic sets and top-down tabling are positive-program strategies, so
    they join the comparison only when the program has no negation; the
    lowered relational pipeline joins when the program is non-recursive;
    the sharded semi-naive backend joins on every fourth positive case.
    """

    family = "datalog-differential"

    def check(self, case):
        payload = case.payload
        program = payload["program"]
        edb = payload["edb"]
        queries = payload["queries"]
        messages = []

        reference = naive_evaluate(program, edb)
        for indexed, planned in DATALOG_CONFIGS:
            for name, evaluator in (
                ("naive", naive_evaluate),
                ("seminaive", seminaive_evaluate),
            ):
                model = evaluator(
                    program, edb, indexed=indexed, planned=planned
                )
                if model != reference:
                    messages.append(
                        "%s(indexed=%s, planned=%s) disagrees with naive "
                        "reference model" % (name, indexed, planned)
                    )

        if is_lowerable(program):
            lowered = lowered_evaluate(program, edb)
            if lowered != reference:
                messages.append(
                    "lowered relational pipeline disagrees with naive "
                    "reference model"
                )

        positive = not program.has_negation()
        if positive and case.seed % 4 == 0:
            sharded = seminaive_evaluate(
                program, edb, backend=self.backend()
            )
            if sharded != reference:
                messages.append(
                    "sharded semi-naive disagrees with naive reference model"
                )

        for query in queries:
            expected = match_query(reference, query)
            if positive and query.predicate in program.idb_predicates():
                for name, runner in (
                    ("magic", magic_evaluate),
                    ("topdown", topdown_query),
                ):
                    answer = runner(program, edb, query)
                    if answer != expected:
                        messages.append(
                            "%s disagrees on query %s: %d vs %d answers"
                            % (name, query, len(answer), len(expected))
                        )
        return messages


class TransactionsDifferentialOracle(Oracle):
    """Scheduler outputs against the serializability metatheory.

    Every scheduler's output schedule must satisfy the guarantee its
    correctness theorem states (conflict serializability; strictness
    and recoverability for strict 2PL), the conflict ⊆ view hierarchy
    must hold on the input, and every verdict must be invariant under a
    bijective renaming of the data items.
    """

    family = "transactions-differential"

    #: View-serializability is checked by permutation; keep it to
    #: schedules with at most this many committed transactions.
    VIEW_LIMIT = 5

    def check(self, case):
        schedule = case.payload["schedule"]
        messages = []

        out, stats = two_phase_lock(schedule, strict=True)
        if not is_conflict_serializable(out):
            messages.append("strict 2PL output is not conflict serializable")
        if not is_strict(out):
            messages.append("strict 2PL output is not strict")
        if not is_recoverable(out):
            messages.append("strict 2PL output is not recoverable")
        basic_out, _ = two_phase_lock(schedule, strict=False)
        if not is_conflict_serializable(basic_out):
            messages.append("basic 2PL output is not conflict serializable")

        ts_out, ts_stats = timestamp_order(schedule)
        if not is_conflict_serializable(ts_out):
            messages.append(
                "timestamp-ordering output is not conflict serializable"
            )
        occ_out, occ_stats = optimistic(schedule)
        if not is_conflict_serializable(occ_out):
            messages.append("OCC output is not conflict serializable")

        transactions = set(schedule.transactions())
        for name, aborted in (
            ("2PL", stats["aborted"]),
            ("timestamp", ts_stats["aborted"]),
            ("OCC", occ_stats["aborted"]),
        ):
            if not aborted <= transactions:
                messages.append(
                    "%s aborted unknown transactions %r"
                    % (name, sorted(aborted - transactions))
                )

        conflict = is_conflict_serializable(schedule)
        if len(schedule.committed()) <= self.VIEW_LIMIT:
            view = is_view_serializable(schedule)
            if conflict and not view:
                messages.append(
                    "conflict-serializable input judged not view serializable"
                )

        renamed = _rename_items(schedule)
        if is_conflict_serializable(renamed) != conflict:
            messages.append(
                "conflict-serializability verdict not invariant under "
                "item renaming"
            )
        for predicate in (is_recoverable, is_strict):
            if predicate(renamed) != predicate(schedule):
                messages.append(
                    "%s verdict not invariant under item renaming"
                    % predicate.__name__
                )
        return messages


class LiveTransactionsOracle(Oracle):
    """The live transaction runtime against the scheduler metatheory.

    One case is a seeded interleaving of SQL DML across concurrent
    ``wb.begin()`` transactions.  It runs **twice** — once under no-wait
    strict 2PL, once under timestamp ordering — and each run must
    satisfy, with zero divergences:

    * the recorded history's committed projection is conflict
      serializable and classified strict (``manager.verify()``, i.e.
      the theory predicates applied to the runtime's own schedule);
    * the final database state equals a **serial replay** of the
      committed transactions' programs in commit order on a fresh copy
      of the initial database — the live interleaving changed nothing
      observable;
    * the write journal retains no ``staged`` entries once every
      transaction is terminal (commit flips them, rollback restores).

    Conflict-aborted transactions are expected under contention; the
    oracle checks the guarantees the theorems actually state, not that
    aborts never happen.
    """

    family = "transactions-live"

    def check(self, case):
        messages = []
        for cc in ("2pl", "timestamp"):
            messages.extend(self._check_cc(case.payload, cc))
        return messages

    @staticmethod
    def _fresh_workbench(db):
        from ..core.workbench import MetatheoryWorkbench
        from ..obs.metrics import MetricsRegistry
        from ..relational.database import Database

        copy = Database.from_dict(
            {
                name: (
                    db[name].schema.attributes,
                    sorted(db[name].tuples),
                )
                for name in db.names()
            }
        )
        return MetatheoryWorkbench(copy, metrics=MetricsRegistry())

    def _check_cc(self, payload, cc):
        from ..errors import TransactionError
        from ..storage.txn import TransactionConflict

        programs = payload["programs"]
        messages = []
        wb = self._fresh_workbench(payload["db"])
        manager = wb.txns
        txns = [wb.begin(cc=cc) for _ in programs]
        cursors = [0] * len(programs)
        for index in payload["order"]:
            txn = txns[index]
            if txn.status != "active":
                continue
            statement = programs[index][cursors[index]]
            cursors[index] += 1
            try:
                txn.sql(statement)
            except TransactionConflict:
                pass  # aborted; its remaining statements are skipped
            except TransactionError as exc:
                # verify_on_commit tripped mid-run: the runtime itself
                # violated the theory.  That IS the divergence.
                messages.append(
                    "[%s] runtime broke the theory mid-run: %s" % (cc, exc)
                )
                return messages
        for index in payload["commit_order"]:
            if txns[index].status != "active":
                continue
            try:
                txns[index].commit()
            except TransactionConflict:
                pass
            except TransactionError as exc:
                messages.append(
                    "[%s] runtime broke the theory at commit: %s"
                    % (cc, exc)
                )
                return messages

        try:
            report = manager.verify()
        except Exception as exc:
            messages.append(
                "[%s] live history failed theory verification: %s"
                % (cc, exc)
            )
            return messages
        if not report["conflict_serializable"]:
            messages.append(
                "[%s] committed projection not conflict serializable" % cc
            )
        if report["recovery_class"] != "ST":
            messages.append(
                "[%s] committed history classified %s, expected ST"
                % (cc, report["recovery_class"])
            )

        for entry in manager.journal.entries():
            if entry.status == "staged":
                messages.append(
                    "[%s] staged journal entry leaked past terminal: %r"
                    % (cc, entry)
                )

        # Serial-replay oracle: committed programs in commit order on a
        # fresh copy of the initial database must land on the same
        # final state the interleaved run produced.
        index_of = {id(txn): i for i, txn in enumerate(txns)}
        replay = self._fresh_workbench(payload["db"])
        for txn in manager.finished:
            if txn.status != "committed":
                continue
            for statement in programs[index_of[id(txn)]]:
                replay.sql(statement)
        for name in sorted(payload["db"].names()):
            live, serial = wb.db[name], replay.db[name]
            if live.tuples != serial.tuples:
                messages.append(
                    "[%s] final state of %r diverges from serial replay "
                    "in commit order: %s"
                    % (cc, name, _relation_diff("live vs serial", live,
                                                serial))
                )
        return messages


def _rename_items(schedule):
    items = sorted({op.item for op in schedule.ops if op.item is not None})
    mapping = {item: "y%d" % index for index, item in enumerate(items)}
    return Schedule(
        [
            Op(op.kind, op.txn, mapping.get(op.item))
            for op in schedule.ops
        ],
        validate=False,
    )


# ---------------------------------------------------------------------------
# Metamorphic oracles
# ---------------------------------------------------------------------------


def _random_condition(rng, attrs, domain):
    left = ra.Attr(rng.choice(attrs))
    if rng.random() < 0.4 and len(attrs) > 1:
        right = ra.Attr(rng.choice(attrs))
    else:
        right = ra.Const(rng.choice(domain))
    return ra.Comparison(
        left, rng.choice(("=", "!=", "<", "<=", ">", ">=")), right
    )


class MetamorphicRelationalOracle(Oracle):
    """Semantics-preserving rewrites must not change the result.

    Each rewrite builds two expressions from the case's base expression
    whose equivalence is a (small) theorem of the algebra under set
    semantics; both run on the streaming executor and must agree up to
    column order.  Rewrite parameters (the conditions and projections
    involved) are derived deterministically from the case seed so every
    case replays bit-for-bit.
    """

    family = "metamorphic-relational"

    def check(self, case):
        payload = case.payload
        db = payload["db"]
        expr = payload["expr"]
        rng = random.Random(derive_seed("mm-rel-check", case.seed))
        schema = db.schema()
        attrs = list(expr.schema(schema).attributes)
        domain = sorted(db.active_domain()) or [0, 1]
        messages = []
        for rewrite in payload.get("rewrites", ()):
            pair = self._build(rewrite, expr, attrs, domain, rng, db)
            if pair is None:
                continue
            left_expr, right_expr = pair
            left = execute(canonicalize(left_expr, schema), db)
            right = execute(canonicalize(right_expr, schema), db)
            if not same_content(left, right):
                messages.append(
                    "metamorphic rewrite %r changed the result: %s"
                    % (rewrite, _relation_diff("lhs vs rhs", left, right))
                )
        return messages

    def _build(self, rewrite, expr, attrs, domain, rng, db):
        """The (lhs, rhs) expression pair for one named rewrite."""
        a = _random_condition(rng, attrs, domain)
        b = _random_condition(rng, attrs, domain)
        if rewrite == "commute-selections":
            return (
                ra.Selection(ra.Selection(expr, a), b),
                ra.Selection(ra.Selection(expr, b), a),
            )
        if rewrite == "fuse-selections":
            return (
                ra.Selection(ra.Selection(expr, a), b),
                ra.Selection(expr, ra.And(a, b)),
            )
        if rewrite == "collapse-projection":
            keep = [x for x in attrs if rng.random() < 0.7] or attrs[:1]
            sub = [x for x in keep if rng.random() < 0.7] or keep[:1]
            return (
                ra.Projection(ra.Projection(expr, tuple(keep)), tuple(sub)),
                ra.Projection(expr, tuple(sub)),
            )
        if rewrite == "select-union-distribute":
            other = ra.Selection(expr, b)
            return (
                ra.Selection(ra.Union(expr, other), a),
                ra.Union(
                    ra.Selection(expr, a), ra.Selection(other, a)
                ),
            )
        if rewrite == "union-commute":
            other = ra.Selection(expr, a)
            return (ra.Union(expr, other), ra.Union(other, expr))
        if rewrite == "intersection-commute":
            other = ra.Selection(expr, a)
            return (
                ra.Intersection(expr, other),
                ra.Intersection(other, expr),
            )
        if rewrite == "join-commute":
            name = rng.choice(db.names())
            return (
                ra.NaturalJoin(expr, ra.RelationRef(name)),
                ra.NaturalJoin(ra.RelationRef(name), expr),
            )
        if rewrite == "difference-complement":
            # E − (E − σ_a(E)) ≡ σ_a(E): conditions are total predicates.
            selected = ra.Selection(expr, a)
            return (
                ra.Difference(expr, ra.Difference(expr, selected)),
                selected,
            )
        if rewrite == "semijoin-definition":
            name = rng.choice(db.names())
            ref = ra.RelationRef(name)
            return (
                ra.Semijoin(expr, ref),
                ra.Projection(ra.NaturalJoin(expr, ref), tuple(attrs)),
            )
        if rewrite == "antijoin-definition":
            name = rng.choice(db.names())
            ref = ra.RelationRef(name)
            return (
                ra.Antijoin(expr, ref),
                ra.Difference(expr, ra.Semijoin(expr, ref)),
            )
        if rewrite == "union-idempotent":
            return (ra.Union(expr, expr), expr)
        return None


class MetamorphicDatalogOracle(Oracle):
    """Program mutations that provably preserve the stratified model."""

    family = "metamorphic-datalog"

    def check(self, case):
        payload = case.payload
        program = payload["program"]
        edb = payload["edb"]
        rng = random.Random(derive_seed("mm-dl-check", case.seed))
        reference = seminaive_evaluate(program, edb)
        messages = []
        for mutation in payload.get("mutations", ()):
            result = self._apply(
                mutation, program, edb, payload, rng, reference
            )
            if result is not None:
                messages.append(result)
        return messages

    def _apply(self, mutation, program, edb, payload, rng, reference):
        if mutation == "duplicate-literal":
            rules = list(program.rules)
            candidates = [
                i for i, rule in enumerate(rules) if rule.positive_literals()
            ]
            if not candidates:
                return None
            index = rng.choice(candidates)
            rule = rules[index]
            literal = rng.choice(rule.positive_literals())
            rules[index] = type(rule)(rule.head, list(rule.body) + [literal])
            model = seminaive_evaluate(type(program)(rules), edb)
            if model != reference:
                return "duplicating a body literal changed the model"
            return None
        if mutation == "satisfied-guard":
            # Guard a rule with a fresh unary EDB predicate holding the
            # whole active domain: every binding satisfies it.
            rules = list(program.rules)
            candidates = [
                i for i, rule in enumerate(rules) if rule.positive_literals()
            ]
            if not candidates:
                return None
            index = rng.choice(candidates)
            rule = rules[index]
            variables = sorted(rule.head.variables())
            if not variables:
                return None
            from ..datalog.ast import Atom, Literal, Variable

            guard = Literal(Atom("guard0", (Variable(rng.choice(variables)),)))
            rules[index] = type(rule)(rule.head, list(rule.body) + [guard])
            guarded_edb = edb.copy()
            domain = set(edb.active_domain())
            for predicate, values in program.facts():
                domain.update(values)
            for value in domain:
                guarded_edb.add("guard0", (value,))
            model = seminaive_evaluate(type(program)(rules), guarded_edb)
            restricted = model.restrict(
                set(reference.predicates()) - {"guard0"}
            )
            if restricted != reference.restrict(
                set(reference.predicates()) - {"guard0"}
            ):
                return "adding a satisfied guard atom changed the model"
            return None
        if mutation == "rule-shuffle":
            rules = list(program.rules)
            rng.shuffle(rules)
            model = seminaive_evaluate(type(program)(rules), edb)
            if model != reference:
                return "permuting the rules changed the model"
            return None
        if mutation == "variable-rename":
            rules = [
                rule.rename_variables("_mm") if rule.body else rule
                for rule in program.rules
            ]
            model = seminaive_evaluate(type(program)(rules), edb)
            if model != reference:
                return "renaming rule variables changed the model"
            return None
        if mutation == "monotone-growth":
            if program.has_negation():
                return None
            grown = edb.copy()
            for predicate, rows in (payload.get("growth") or {}).items():
                for row in rows:
                    grown.add(predicate, tuple(row))
            model = seminaive_evaluate(program, grown)
            for predicate in reference.predicates():
                if not set(reference.get(predicate)) <= set(
                    model.get(predicate)
                ):
                    return (
                        "positive program lost %s facts under EDB growth"
                        % predicate
                    )
            return None
        return None


class MetamorphicOptimizerOracle(Oracle):
    """Single-rule optimizer toggles must not change any answer.

    The full default pipeline and, for each rule in the case's
    deterministic toggle set, the pipeline with exactly that rule
    disabled all optimize the same canonical plan; every optimized
    plan runs on the streaming executor and must reproduce the
    unoptimized plan's result *exactly* (the optimizer's permutation
    projections make even column order an invariant).
    """

    family = "metamorphic-optimizer"

    def check(self, case):
        payload = case.payload
        db = payload["db"]
        schema = db.schema()
        canonical = canonicalize(payload["expr"], schema)
        baseline = execute(canonical, db)
        messages = []
        variants = [("full pipeline", _FULL_PIPELINE)]
        variants.extend(
            ("without %s" % rule, Optimizer(disable=(rule,)))
            for rule in payload.get("toggle_rules", ())
        )
        for label, optimizer in variants:
            plan = canonicalize(optimizer.optimize(canonical, db), schema)
            result = execute(plan, db)
            if result != baseline:
                messages.append(
                    "optimizer (%s) changed the result: %s"
                    % (
                        label,
                        _relation_diff(
                            "optimized vs unoptimized", result, baseline
                        ),
                    )
                )
        return messages


#: The registry: family name -> oracle instance.
def build_oracles(families=None):
    """Fresh oracle instances (one per family), in registry order."""
    all_oracles = [
        RelationalDifferentialOracle(),
        CalculusDifferentialOracle(),
        DatalogDifferentialOracle(),
        TransactionsDifferentialOracle(),
        LiveTransactionsOracle(),
        MetamorphicRelationalOracle(),
        MetamorphicDatalogOracle(),
        MetamorphicOptimizerOracle(),
    ]
    if families is None:
        return all_oracles
    wanted = set(families)
    unknown = wanted - {oracle.family for oracle in all_oracles}
    if unknown:
        raise ValueError(
            "unknown oracle families: %s" % ", ".join(sorted(unknown))
        )
    return [oracle for oracle in all_oracles if oracle.family in wanted]


ORACLE_FAMILIES = tuple(oracle.family for oracle in build_oracles())
