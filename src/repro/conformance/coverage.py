"""Per-construct coverage tracking for the conformance workloads.

A fuzzer is only as good as the corpus it actually generates: a
generator that never emits an antijoin never tests the antijoin
operator, no matter how many cases it runs.  The tracker counts, per
oracle family, how many generated cases exercised each syntactic
construct (node types, condition shapes, join regimes, negation
patterns, schedule mixes), publishes the counts through an
:class:`~repro.obs.metrics.MetricsRegistry`, and audits the counts
against the *universe* — the constructs each family is supposed to be
able to reach.  ``unseen()`` is the generator-bias detector: it is how
the compound-condition and multi-equi-theta blind spots of
:func:`~repro.core.random_instances.random_algebra_expression` were
found (and then fixed).
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry

#: Everything the relational workload generator is expected to reach.
#: ``cond:*`` entries describe selection/theta conditions; ``theta:*``
#: classify the cross-side conjunct bundle of a theta join;
#: ``divide:multi-attr`` is division by an arity-2 divisor.
ALGEBRA_UNIVERSE = frozenset(
    [
        "node:selection",
        "node:projection",
        "node:rename",
        "node:naturaljoin",
        "node:thetajoin",
        "node:product",
        "node:union",
        "node:difference",
        "node:intersection",
        "node:semijoin",
        "node:antijoin",
        "node:division",
        "node:constantrelation",
        "node:relationref",
        "cond:and",
        "cond:or",
        "cond:not",
        "cond:=",
        "cond:!=",
        "cond:<",
        "cond:<=",
        "cond:>",
        "cond:>=",
        "cond:attr-attr",
        "cond:attr-const",
        "theta:equi",
        "theta:non-equi",
        "theta:multi-equi",
        "divide:multi-attr",
    ]
)

#: Datalog program shapes the workload generator must reach.
DATALOG_UNIVERSE = frozenset(
    [
        "rule:recursive",
        "rule:nonrecursive",
        "rule:negation",
        "program:text-fact-idb",
        "program:text-fact-edb",
        "query:bound",
        "query:free",
    ]
)

#: Transaction-schedule mixes.
SCHEDULE_UNIVERSE = frozenset(
    [
        "op:read",
        "op:write",
        "workload:read-heavy",
        "workload:write-heavy",
        "workload:hot-contention",
        "workload:uniform",
    ]
)

#: Live concurrent-transaction workload shapes.
LIVE_TXN_UNIVERSE = frozenset(
    [
        "live:insert",
        "live:delete",
        "live:update",
        "live:select",
        "live:multi-txn",
    ]
)

#: Universe per family name (families without an entry are unaudited).
UNIVERSES = {
    "relational-differential": ALGEBRA_UNIVERSE,
    "metamorphic-relational": ALGEBRA_UNIVERSE,
    "metamorphic-optimizer": ALGEBRA_UNIVERSE,
    "datalog-differential": DATALOG_UNIVERSE,
    "metamorphic-datalog": DATALOG_UNIVERSE,
    "transactions-differential": SCHEDULE_UNIVERSE,
    "transactions-live": LIVE_TXN_UNIVERSE,
}


class CoverageTracker:
    """Counts construct occurrences per oracle family.

    Every observation is mirrored into ``registry`` as labeled counters
    (``conformance_construct{family=..., construct=...}`` and
    ``conformance_cases{family=...}``), so a long-running fuzz session
    exposes its corpus composition through the same metrics surface as
    the engines it is fuzzing.
    """

    __slots__ = ("registry", "_counts", "_cases")

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counts = {}
        self._cases = {}

    def observe(self, family, constructs):
        """Record one generated case's construct set."""
        counts = self._counts.setdefault(family, {})
        self._cases[family] = self._cases.get(family, 0) + 1
        self.registry.counter("conformance_cases", family=family).inc()
        for construct in constructs:
            counts[construct] = counts.get(construct, 0) + 1
            self.registry.counter(
                "conformance_construct", family=family, construct=construct
            ).inc()

    def cases(self, family=None):
        """Cases observed for one family (or the total)."""
        if family is not None:
            return self._cases.get(family, 0)
        return sum(self._cases.values())

    def counts(self, family):
        """``{construct: count}`` for one family (a copy)."""
        return dict(self._counts.get(family, {}))

    def families(self):
        return sorted(self._counts)

    def unseen(self, family, universe=None):
        """Universe constructs this corpus has never exercised.

        The generator-bias audit: a non-empty result after a sizable
        sweep means the generator cannot (or almost never does) reach
        those constructs.
        """
        if universe is None:
            universe = UNIVERSES.get(family, frozenset())
        return sorted(set(universe) - set(self._counts.get(family, {})))

    def snapshot(self):
        """``{family: {construct: count}}`` (deep copy; report fodder)."""
        return {
            family: dict(counts) for family, counts in self._counts.items()
        }

    def delta(self, before):
        """Coverage gained since a prior :meth:`snapshot`."""
        out = {}
        for family, counts in self._counts.items():
            prior = before.get(family, {})
            gained = {
                construct: count - prior.get(construct, 0)
                for construct, count in counts.items()
                if count != prior.get(construct, 0)
            }
            if gained:
                out[family] = gained
        return out

    def report(self):
        """The coverage block of the driver's JSON run report."""
        return {
            family: {
                "cases": self._cases.get(family, 0),
                "constructs": dict(sorted(counts.items())),
                "unseen": self.unseen(family),
            }
            for family, counts in sorted(self._counts.items())
        }

    def __repr__(self):
        return "CoverageTracker(%d families, %d cases)" % (
            len(self._counts),
            self.cases(),
        )
