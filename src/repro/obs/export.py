"""Exporters: traces and metrics as text trees, JSON lines, flat dumps.

Three views over the same recorded data:

* :func:`render_trace` — a pretty-printed span tree for humans
  (EXPLAIN-style indentation, millisecond timings, attributes and
  counter deltas inline);
* :func:`trace_json_lines` — one JSON object per span, depth-annotated,
  for machine consumption (benchmark artifacts, CI uploads);
* :func:`render_metrics` — the registry's flat dump as aligned text
  (``metrics.MetricsRegistry.as_json_lines`` is its JSON twin).
"""

from __future__ import annotations

import json


def _format_value(value):
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def _format_optional(value):
    return "-" if value is None else _format_value(value)


def _span_line(span):
    parts = [span.name]
    if span.kind == "event":
        parts.append("[event]")
    elif span.elapsed is not None:
        parts.append("%.3fms" % (span.elapsed * 1e3))
    for key in sorted(span.attributes):
        parts.append("%s=%s" % (key, _format_value(span.attributes[key])))
    if span.counters:
        nonzero = [
            "%s=%d" % (field, count)
            for field, count in span.counters.items()
            if count
        ]
        if nonzero:
            parts.append("{%s}" % " ".join(nonzero))
    return "  ".join(parts)


def render_trace(tracer, indent="  "):
    """The tracer's span forest as an indented text tree."""
    lines = []
    for depth, span in tracer.walk():
        lines.append("%s%s" % (indent * depth, _span_line(span)))
    return "\n".join(lines)


def trace_json_lines(tracer):
    """One JSON object per span (pre-order, with depth), as JSON lines."""
    lines = []
    for depth, span in tracer.walk():
        record = {
            "name": span.name,
            "kind": span.kind,
            "depth": depth,
            "elapsed_ms": (
                None if span.elapsed is None else span.elapsed * 1e3
            ),
        }
        if span.attributes:
            record["attributes"] = {
                key: _jsonable(value)
                for key, value in span.attributes.items()
            }
        if span.counters:
            record["counters"] = dict(span.counters)
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines)


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


def render_metrics(registry):
    """The registry dump as aligned ``name{labels}  values`` lines."""
    rows = []
    for entry in registry.dump():
        labels = ",".join(
            "%s=%s" % (k, v) for k, v in sorted(entry["labels"].items())
        )
        name = entry["name"] + ("{%s}" % labels if labels else "")
        if entry["type"] == "histogram":
            value = (
                "count=%d sum=%s min=%s max=%s mean=%s p50=%s p95=%s" % (
                    entry["count"],
                    _format_value(entry["sum"]),
                    _format_optional(entry["min"]),
                    _format_optional(entry["max"]),
                    _format_value(entry["mean"]),
                    _format_optional(entry.get("p50")),
                    _format_optional(entry.get("p95")),
                )
            )
        else:
            value = _format_value(entry["value"])
        rows.append((name, entry["type"], value))
    if not rows:
        return ""
    width = max(len(name) for name, _, _ in rows)
    kind_width = max(len(kind) for _, kind, _ in rows)
    return "\n".join(
        "%s  %s  %s" % (name.ljust(width), kind.ljust(kind_width), value)
        for name, kind, value in rows
    )
