"""A process-wide metrics registry: counters, gauges, histograms.

Where spans (``trace.py``) capture *one run's* structure, the registry
accumulates *named series* across runs — plan-cache hit rates, per-
workload scan counts, scheduler abort totals.  Series are identified by
``(name, labels)``; the benchmarks use labels to key one metric per
workload and then derive their printed tables from :meth:`dump` — the
single source of truth for every number that lands in an artifact.

All instruments are plain objects with no locks (matching the library's
single-threaded execution model) and no background machinery: a
registry is a dictionary you can always inspect, dump, or throw away.
"""

from __future__ import annotations

import json

from ..errors import ObservabilityError


def _label_key(labels):
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        self.value += amount
        return self

    def snapshot(self):
        return {"value": self.value}


class Gauge:
    """A value that can go anywhere (sizes, ratios, timestamps)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value):
        self.value = value
        return self

    def add(self, amount):
        self.value += amount
        return self

    def snapshot(self):
        return {"value": self.value}


class Histogram:
    """Streaming summary of observations: count/sum/min/max/mean."""

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        return self

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named, labeled series of counters/gauges/histograms."""

    __slots__ = ("_series",)

    def __init__(self):
        self._series = {}

    def _instrument(self, cls, name, labels):
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(name, dict(labels))
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ObservabilityError(
                "metric %r already registered as a %s" % (name, series.kind)
            )
        return series

    def counter(self, name, **labels):
        """Get-or-create the counter for ``(name, labels)``."""
        return self._instrument(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._instrument(Gauge, name, labels)

    def histogram(self, name, **labels):
        return self._instrument(Histogram, name, labels)

    def value(self, name, **labels):
        """The current value of a counter/gauge series (KeyError if absent)."""
        series = self._series[(name, _label_key(labels))]
        return series.value

    def series(self):
        """All instruments, in registration order."""
        return list(self._series.values())

    def dump(self):
        """The flat metrics dump: one dict per series, registration order.

        This is the canonical machine-readable form — artifacts, JSON
        exports, and benchmark tables are all derived from it.
        """
        return [
            {
                "type": series.kind,
                "name": series.name,
                "labels": dict(series.labels),
                **series.snapshot(),
            }
            for series in self._series.values()
        ]

    def as_json_lines(self):
        """The dump as JSON lines (one series per line)."""
        return "\n".join(
            json.dumps(entry, sort_keys=True) for entry in self.dump()
        )

    def clear(self):
        self._series.clear()

    def __len__(self):
        return len(self._series)

    def __repr__(self):
        return "MetricsRegistry(%d series)" % len(self._series)


#: The process-wide default registry (long-lived processes; tests and
#: benchmarks usually make their own).
REGISTRY = MetricsRegistry()
