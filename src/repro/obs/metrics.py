"""A process-wide metrics registry: counters, gauges, histograms.

Where spans (``trace.py``) capture *one run's* structure, the registry
accumulates *named series* across runs — plan-cache hit rates, per-
workload scan counts, scheduler abort totals.  Series are identified by
``(name, labels)``; the benchmarks use labels to key one metric per
workload and then derive their printed tables from :meth:`dump` — the
single source of truth for every number that lands in an artifact.

All instruments are plain objects with no locks (matching the library's
single-threaded execution model) and no background machinery: a
registry is a dictionary you can always inspect, dump, or throw away.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

from ..errors import ObservabilityError


def _label_key(labels):
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        self.value += amount
        return self

    def snapshot(self):
        return {"value": self.value}


class Gauge:
    """A value that can go anywhere (sizes, ratios, timestamps)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value):
        self.value = value
        return self

    def add(self, amount):
        self.value += amount
        return self

    def snapshot(self):
        return {"value": self.value}


class Histogram:
    """Streaming summary of observations: count/sum/min/max/mean plus
    p50/p95 percentile estimates.

    Percentiles come from a bounded, *deterministic* sample: every
    ``stride``-th observation is retained, and when the buffer exceeds
    :data:`SAMPLE_CAP` it is decimated (every other sample dropped, the
    stride doubled).  No randomness — the same observation sequence
    always yields the same summary, matching the repo's seed-determinism
    discipline — and memory stays O(SAMPLE_CAP) however long the series
    runs.  Under decimation the estimate is approximate; count, sum,
    min, max, and mean remain exact.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_samples", "_stride")

    kind = "histogram"

    #: Retained-sample bound before deterministic decimation kicks in.
    SAMPLE_CAP = 512

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples = []
        self._stride = 1

    def observe(self, value):
        if (self.count % self._stride) == 0:
            self._samples.append(value)
            if len(self._samples) > self.SAMPLE_CAP:
                self._samples = self._samples[::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        return self

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Nearest-rank percentile over the retained sample (None when
        empty).  ``q`` is in [0, 100]; p100 is the sample maximum."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = int(-(-q * len(ordered) // 100))  # ceil without floats
        return ordered[min(max(rank - 1, 0), len(ordered) - 1)]

    @property
    def p50(self):
        return self.percentile(50)

    @property
    def p95(self):
        return self.percentile(95)

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
        }


class MetricsRegistry:
    """Named, labeled series of counters/gauges/histograms."""

    __slots__ = ("_series",)

    def __init__(self):
        self._series = {}

    def _instrument(self, cls, name, labels):
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(name, dict(labels))
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ObservabilityError(
                "metric %r already registered as a %s" % (name, series.kind)
            )
        return series

    def counter(self, name, **labels):
        """Get-or-create the counter for ``(name, labels)``."""
        return self._instrument(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._instrument(Gauge, name, labels)

    def histogram(self, name, **labels):
        return self._instrument(Histogram, name, labels)

    def value(self, name, **labels):
        """The current value of a counter/gauge series (KeyError if absent)."""
        series = self._series[(name, _label_key(labels))]
        return series.value

    def series(self):
        """All instruments, in registration order."""
        return list(self._series.values())

    def dump(self):
        """The flat metrics dump: one dict per series, registration order.

        This is the canonical machine-readable form — artifacts, JSON
        exports, and benchmark tables are all derived from it.
        """
        return [
            {
                "type": series.kind,
                "name": series.name,
                "labels": dict(series.labels),
                **series.snapshot(),
            }
            for series in self._series.values()
        ]

    def as_json_lines(self):
        """The dump as JSON lines (one series per line)."""
        return "\n".join(
            json.dumps(entry, sort_keys=True) for entry in self.dump()
        )

    @contextmanager
    def scoped(self):
        """Snapshot/restore isolation: a fresh series table for a block.

        On entry the registry's live series table is set aside and
        replaced with an empty one; on exit (however the block ends) the
        original table is restored untouched.  Benchmarks and tests that
        instrument code writing to the process-global :data:`REGISTRY`
        use this so repeated runs never see each other's accumulated
        state::

            with REGISTRY.scoped():
                run_workload()
                table = REGISTRY.dump()     # this run only
            # REGISTRY is back to its pre-block contents
        """
        saved = self._series
        self._series = {}
        try:
            yield self
        finally:
            self._series = saved

    def clear(self):
        self._series.clear()

    def __len__(self):
        return len(self._series)

    def __repr__(self):
        return "MetricsRegistry(%d series)" % len(self._series)


#: The process-wide default registry (long-lived processes; tests and
#: benchmarks usually make their own).
REGISTRY = MetricsRegistry()
