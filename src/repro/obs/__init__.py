"""Observability: spans, metrics, history, and introspection relations.

The paper judges the health of a field by *measuring* it; this package
applies the same discipline to the codebase.  Every execution layer —
the streaming executor, the Datalog fixpoint engines, the transaction
schedulers — can emit spans into a :class:`~repro.obs.trace.Tracer` and
counters into a :class:`~repro.obs.metrics.MetricsRegistry`, turning
runtime behavior into first-class inspectable data instead of print
statements.

Two layers close the loop and make that data *queryable*:

* :mod:`repro.obs.history` — a flight recorder of per-query records on
  the workbench (ring buffer, error capture, slow-query OpReports);
* :mod:`repro.obs.introspect` — the ``sys_`` system relations
  (``sys_metrics``, ``sys_spans``, ``sys_query_log``,
  ``sys_plan_cache``, ``sys_catalog_stats``, ``sys_workers``),
  materialized on demand so every front-end can query the system about
  itself.

The contract: observability is zero-cost when off.  Every instrumented
call site defaults to :data:`~repro.obs.trace.NULL_TRACER`, whose
methods are no-ops returning one shared null span — no allocation, no
timing, no branches beyond the method dispatch — and a disabled query
history costs one attribute check per workbench call.
"""

from .export import render_metrics, render_trace, trace_json_lines
from .history import QueryHistory, QueryRecord
from .introspect import (
    SYSTEM_RELATION_NAMES,
    SystemRelations,
    install_introspection,
)
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer, ensure_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QueryHistory",
    "QueryRecord",
    "REGISTRY",
    "SYSTEM_RELATION_NAMES",
    "Span",
    "SystemRelations",
    "Tracer",
    "ensure_tracer",
    "install_introspection",
    "render_metrics",
    "render_trace",
    "trace_json_lines",
]
