"""Observability: spans, metrics, and exporters for the whole corpus.

The paper judges the health of a field by *measuring* it; this package
applies the same discipline to the codebase.  Every execution layer —
the streaming executor, the Datalog fixpoint engines, the transaction
schedulers — can emit spans into a :class:`~repro.obs.trace.Tracer` and
counters into a :class:`~repro.obs.metrics.MetricsRegistry`, turning
runtime behavior into first-class inspectable data instead of print
statements.

The contract: tracing is zero-cost when off.  Every instrumented call
site defaults to :data:`~repro.obs.trace.NULL_TRACER`, whose methods are
no-ops returning one shared null span — no allocation, no timing, no
branches beyond the method dispatch.
"""

from .export import render_metrics, render_trace, trace_json_lines
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer, ensure_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "REGISTRY",
    "Span",
    "Tracer",
    "ensure_tracer",
    "render_metrics",
    "render_trace",
    "trace_json_lines",
]
