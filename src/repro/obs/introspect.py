"""Queryable system relations: the runtime's own state as relations.

The paper's thesis is that a field should be studied with its own tools
— metatheory as "asking the big queries" about databases themselves.
This module closes the loop inside the reproduction: the observability
layer's operational exhaust (metrics, spans, the query log, the plan
cache, catalog statistics, worker pools) is exposed as ordinary
relations in a reserved ``sys_`` namespace, materialized **on demand**
from the live objects, so every front-end — SQL, algebra, calculus, and
Datalog — can query the system about itself::

    wb.sql("SELECT name, value FROM sys_metrics WHERE value > 100")
    wb.run("hot(H, N) :- sys_query_log(Q, K, S, H, T, W, N, ...).")

The nine system relations:

==================  =====================================================
``sys_metrics``     one row per (series, statistic) from the workbench's
                    :class:`~repro.obs.metrics.MetricsRegistry`
``sys_spans``       the tracer's span forest, flattened with ids
``sys_query_log``   the flight recorder's ring buffer
                    (:mod:`repro.obs.history`)
``sys_plan_cache``  one row per cached plan, with per-entry hit counts,
                    the route that last served it, and the fingerprint
                    of the kernel when that route was compiled
``sys_kernels``     one row per kernel-cache entry (compiled kernels and
                    cached fallback verdicts)
``sys_catalog_stats``  the optimizer catalog's census, one row per
                    (relation, attribute)
``sys_workers``     one row per parallel worker pool
``sys_transactions``  one row per live or finished transaction from the
                    transaction manager (:mod:`repro.storage.txn`)
``sys_versions``    the MVCC write journal, one row per relation version
                    (:mod:`repro.storage.journal`)
==================  =====================================================

Mechanics: :func:`install_introspection` registers one *virtual
relation provider* per table on the workbench's
:class:`~repro.relational.database.Database`.  Providers run only when a
query actually dereferences the name, so a workbench that never asks
about itself pays nothing.  The namespace is reserved: user relations
may not shadow ``sys_`` names (``Database.add``/``replace``/``insert``
raise), ``sys_`` relations never appear in ``names()``/iteration (so
``schema_hypergraph()``, ``full_join()``, ``FactStore.from_database``,
and the conformance workload generators all see user data only), and
Datalog rules may not use a ``sys_`` predicate as a head.

Self-reference is well-defined: a query *over* ``sys_query_log`` sees
only queries that already finished (recording happens after the run),
and materialization takes a point-in-time snapshot, so a system relation
never changes mid-query.
"""

from __future__ import annotations

from ..errors import DatalogError
from ..relational.database import SYSTEM_PREFIX, is_system_name
from ..relational.schema import RelationSchema

__all__ = [
    "SYSTEM_PREFIX",
    "SYSTEM_RELATION_NAMES",
    "SystemRelations",
    "install_introspection",
    "is_system_name",
    "materialize_system_facts",
]


#: Schemas of the nine system relations (static: one object per process).
SYS_METRICS = RelationSchema(
    "sys_metrics", ("name", "kind", "labels", "stat", "value")
)
SYS_SPANS = RelationSchema(
    "sys_spans",
    ("span_id", "parent_id", "name", "kind", "depth", "elapsed_ms",
     "attributes"),
)
SYS_QUERY_LOG = RelationSchema(
    "sys_query_log",
    ("qid", "kind", "status", "query_hash", "text", "wall_ms", "rows",
     "tuples_materialized", "rules_fired", "plan_cache_hit",
     "parse_cache_hit", "plan_fingerprint", "route", "slow", "error"),
)
SYS_PLAN_CACHE = RelationSchema(
    "sys_plan_cache",
    ("entry", "plan_fingerprint", "optimized", "hits", "last_route",
     "kernel_fingerprint"),
)
SYS_KERNELS = RelationSchema(
    "sys_kernels", ("entry", "plan_fingerprint", "status", "pipelines",
                    "hits")
)
SYS_CATALOG_STATS = RelationSchema(
    "sys_catalog_stats", ("relation", "attribute", "rows",
                          "distinct_values")
)
SYS_WORKERS = RelationSchema(
    "sys_workers",
    ("pool", "workers", "started", "spawned", "respawns",
     "tasks_dispatched", "serial_retries", "parallel_runs", "serial_runs"),
)
SYS_TRANSACTIONS = RelationSchema(
    "sys_transactions",
    ("txn", "cc", "status", "reads", "writes", "rows_inserted",
     "rows_deleted", "statements"),
)
SYS_VERSIONS = RelationSchema(
    "sys_versions",
    ("seq", "vid", "txn", "kind", "relation", "inserted", "deleted",
     "status"),
)

SYSTEM_SCHEMAS = (
    SYS_METRICS,
    SYS_SPANS,
    SYS_QUERY_LOG,
    SYS_PLAN_CACHE,
    SYS_KERNELS,
    SYS_CATALOG_STATS,
    SYS_WORKERS,
    SYS_TRANSACTIONS,
    SYS_VERSIONS,
)

#: The reserved relation names, sorted.
SYSTEM_RELATION_NAMES = tuple(sorted(s.name for s in SYSTEM_SCHEMAS))


def render_labels(labels):
    """A label dict as one sortable string cell (``"k=v,k2=v2"``)."""
    return ",".join("%s=%s" % (k, v) for k, v in sorted(labels.items()))


class SystemRelations:
    """The provider bundle bound to one workbench.

    Each ``rows_*`` method materializes one table from the live session
    objects; :meth:`install` registers them all under the ``sys_``
    namespace of the workbench's database.
    """

    __slots__ = ("wb",)

    def __init__(self, workbench):
        self.wb = workbench

    def install(self):
        db = self.wb.db
        db.register_virtual(SYS_METRICS, self.rows_metrics)
        db.register_virtual(SYS_SPANS, self.rows_spans)
        db.register_virtual(SYS_QUERY_LOG, self.rows_query_log)
        db.register_virtual(SYS_PLAN_CACHE, self.rows_plan_cache)
        db.register_virtual(SYS_KERNELS, self.rows_kernels)
        db.register_virtual(SYS_CATALOG_STATS, self.rows_catalog_stats)
        db.register_virtual(SYS_WORKERS, self.rows_workers)
        db.register_virtual(SYS_TRANSACTIONS, self.rows_transactions)
        db.register_virtual(SYS_VERSIONS, self.rows_versions)
        return self

    # -- providers --------------------------------------------------------

    def rows_metrics(self):
        """(name, kind, labels, stat, value): one row per statistic.

        Counters and gauges contribute a single ``stat="value"`` row;
        histograms contribute one row per summary statistic (count, sum,
        min, max, mean, p50, p95) so *every* ``value`` cell is a number
        and range predicates always type-check.  The workbench's plan
        cache is re-published into the registry first, so cache gauges
        are current as of the materialization.
        """
        registry = self.wb.metrics
        self.wb.plan_cache.publish(registry)
        self.wb.kernel_cache.publish(registry)
        rows = []
        for entry in registry.dump():
            labels = render_labels(entry["labels"])
            if entry["type"] == "histogram":
                for stat in ("count", "sum", "min", "max", "mean",
                             "p50", "p95"):
                    if entry.get(stat) is not None:
                        rows.append(
                            (entry["name"], "histogram", labels, stat,
                             entry[stat])
                        )
            else:
                rows.append(
                    (entry["name"], entry["type"], labels, "value",
                     entry["value"])
                )
        return rows

    def rows_spans(self):
        """The tracer's span forest with pre-order ids and parent links."""
        rows = []
        counter = [0]

        def visit(span, parent_id, depth):
            span_id = counter[0]
            counter[0] += 1
            rows.append(
                (
                    span_id,
                    parent_id,
                    span.name,
                    span.kind,
                    depth,
                    None if span.elapsed is None else span.elapsed * 1e3,
                    render_labels(span.attributes),
                )
            )
            for child in span.children:
                visit(child, span_id, depth + 1)

        for root in self.wb.tracer.roots:
            visit(root, None, 0)
        return rows

    def rows_query_log(self):
        """The flight recorder's ring buffer, one row per record."""
        return [record.row() for record in self.wb.history.records()]

    def rows_plan_cache(self):
        """One row per cached plan entry, insertion order, with hits
        and the executor route that last served it."""
        rows = []
        for index, key, hits, route, kernel in (
            self.wb.plan_cache.entries()
        ):
            optimized = None
            if isinstance(key, tuple) and len(key) >= 2 and isinstance(
                key[1], bool
            ):
                optimized = int(key[1])
            rows.append(
                (index, self.wb.plan_cache.fingerprint(key), optimized,
                 hits, route, kernel)
            )
        return rows

    def rows_kernels(self):
        """One row per kernel-cache entry: compiled kernels ("compiled",
        with their fused-pipeline count) and cached fallback verdicts
        ("fallback", pipelines None)."""
        return self.wb.kernel_cache.entries()

    def rows_catalog_stats(self):
        """The optimizer catalog's census over *user* relations.

        Materializing forces the lazy census (one scan per uncached
        relation) — introspection pays for its own statistics rather
        than returning stale or partial rows.  System relations are
        excluded, so this can never recurse into itself.
        """
        catalog = self.wb.db.catalog()
        rows = []
        for name in self.wb.db.names():
            stats = catalog.stats(name)
            if stats is None:
                continue
            rows.extend(stats.census_rows(name))
        return rows

    def rows_workers(self):
        """One row per cached parallel backend (pool id = worker count)."""
        rows = []
        for workers, backend in sorted(
            self.wb._parallel_backends.items()
        ):
            stats = backend.stats()
            rows.append(
                (
                    workers,
                    stats["workers"],
                    int(stats["started"]),
                    stats["spawned"],
                    stats["respawns"],
                    stats["tasks_dispatched"],
                    stats["serial_retries"],
                    stats["parallel_runs"],
                    stats["serial_runs"],
                )
            )
        return rows


    def rows_transactions(self):
        """One row per transaction the manager has seen, begin order:
        live (``active``) and finished (``committed``/``aborted``), with
        read/write-set sizes and row-delta accounting."""
        return self.wb.txns.rows()

    def rows_versions(self):
        """The MVCC write journal's retained ring, one row per relation
        version: the commit sequence, version id (None while a write is
        only ``staged``), owning transaction (None for autocommit),
        mutation kind, and the insert/delete tuple counts."""
        return [
            entry.row() for entry in self.wb.db.store().journal.entries()
        ]


def install_introspection(workbench):
    """Register the ``sys_`` relations on a workbench's database."""
    return SystemRelations(workbench).install()


def materialize_system_facts(db, program, store):
    """Snapshot referenced ``sys_`` relations into a Datalog EDB.

    ``FactStore.from_database`` deliberately ignores virtual relations
    (a Datalog run should not pay to materialize eight system tables it
    never mentions); this helper adds exactly the ``sys_`` predicates
    the program's rule bodies reference.  Heads are checked first: the
    namespace is read-only, so deriving *into* it is an error.

    Returns the store, for chaining.
    """
    referenced = set()
    for rule in program.rules:
        if is_system_name(rule.head.predicate):
            raise DatalogError(
                "rule head %r writes into the reserved read-only 'sys_' "
                "namespace; derive into an ordinary predicate instead"
                % (rule.head.predicate,)
            )
        for predicate, _positive in rule.body_predicates():
            if is_system_name(predicate):
                referenced.add(predicate)
    for predicate in sorted(referenced):
        if predicate in db:
            store.add_all(predicate, db[predicate].tuples)
    return store
