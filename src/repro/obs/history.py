"""The query-history flight recorder: a bounded log of workbench runs.

Every query that enters a recording :class:`~repro.core.workbench
.MetatheoryWorkbench` — through any front-end, succeeding or raising —
leaves one :class:`QueryRecord` in a ring buffer: kind, text hash, wall
time, rows out, tuples materialized, optimizer rules fired, cache
outcomes, executor route, and the error if one was raised.  Like its
aviation namesake the recorder captures *continuously* and keeps a
bounded window (``capacity`` most recent queries); a crash is exactly
when the tape matters most, so recording happens in a ``finally`` and a
failed query is a first-class record with ``status="error"``.

Arming the **slow-query threshold** (``slow_ms``) switches the
workbench's streaming executor to its instrumented twin
(:func:`~repro.plan.explain.run_explained` — identical answers, pinned
by the differential suite), so when a query crosses the threshold the
full per-operator :class:`~repro.plan.explain.OpReport` tree already
exists and is attached to the record.  Reports for fast queries are
discarded; the wall time recorded is the instrumented run's, and the
record says so (``instrumented=True``).

Zero-cost when off: a disabled history costs one attribute check per
query on the workbench's hot path — no records, no statistics objects,
no captures are allocated (the tier-1 pin covers this alongside the
no-span-allocation contract).

The recorder's data is also a **system relation**: ``sys_query_log``
(see :mod:`repro.obs.introspect`) materializes the ring buffer as an
ordinary queryable relation, so the workbench can be asked about its
own history in SQL, algebra, calculus, or Datalog.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque


def query_text(query):
    """The canonical text form of a query in any front-end."""
    return query if isinstance(query, str) else repr(query)


def query_hash(text):
    """A short stable content hash of a query's text form."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


class QueryRecord:
    """One recorded query: what ran, how it ran, what it cost.

    Attributes:
        qid: monotonically increasing id within the history.
        kind: front-end ("sql", "algebra", "calculus", "datalog").
        text: the query's text form (SQL/Datalog source, or the repr of
            an algebra/calculus object).
        query_hash: short SHA-1 of ``text``.
        status: ``"ok"`` or ``"error"``.
        error: ``"ExcType: message"`` when the query raised, else None.
        wall_ms: wall-clock milliseconds for the whole call.
        rows: result cardinality (relation size, or the Datalog model's
            fact count); None when the query raised.
        tuples_materialized: executor buffer work charged to the run.
        rules_fired: ``{rule_name: count}`` from the optimizer (empty
            when unoptimized or not applicable).
        plan_cache_hit / parse_cache_hit: workbench cache outcomes
            (None where the cache does not apply).
        plan_fingerprint: short hash of the plan-cache key, joinable
            against ``sys_plan_cache``; None off the pipeline path.
        route: how the query executed ("streaming", "treewalk",
            "parallel", "direct", "datalog:lowered", "datalog:fixpoint").
        slow: True when ``wall_ms`` crossed the armed threshold.
        instrumented: True when the run used the instrumented executor.
        report: the :class:`~repro.plan.explain.OpReport` tree attached
            to slow queries (None otherwise).
    """

    __slots__ = (
        "qid", "kind", "text", "query_hash", "status", "error", "wall_ms",
        "rows", "tuples_materialized", "rules_fired", "plan_cache_hit",
        "parse_cache_hit", "plan_fingerprint", "route", "slow",
        "instrumented", "report",
    )

    def __init__(self, qid, kind, text, wall_ms, rows=None,
                 tuples_materialized=0, rules_fired=None,
                 plan_cache_hit=None, parse_cache_hit=None,
                 plan_fingerprint=None, route=None, error=None, slow=False,
                 instrumented=False, report=None):
        self.qid = qid
        self.kind = kind
        self.text = text
        self.query_hash = query_hash(text)
        self.status = "ok" if error is None else "error"
        self.error = error
        self.wall_ms = wall_ms
        self.rows = rows
        self.tuples_materialized = tuples_materialized
        self.rules_fired = dict(rules_fired or {})
        self.plan_cache_hit = plan_cache_hit
        self.parse_cache_hit = parse_cache_hit
        self.plan_fingerprint = plan_fingerprint
        self.route = route
        self.slow = slow
        self.instrumented = instrumented
        self.report = report

    def row(self):
        """The record as a ``sys_query_log`` tuple (see introspect)."""
        return (
            self.qid,
            self.kind,
            self.status,
            self.query_hash,
            self.text,
            self.wall_ms,
            self.rows,
            self.tuples_materialized,
            sum(self.rules_fired.values()),
            _flag(self.plan_cache_hit),
            _flag(self.parse_cache_hit),
            self.plan_fingerprint,
            self.route,
            int(self.slow),
            self.error,
        )

    def as_dict(self):
        """JSON-ready form (the CI artifact's record schema)."""
        return {
            "qid": self.qid,
            "kind": self.kind,
            "status": self.status,
            "error": self.error,
            "query_hash": self.query_hash,
            "text": self.text,
            "wall_ms": self.wall_ms,
            "rows": self.rows,
            "tuples_materialized": self.tuples_materialized,
            "rules_fired": dict(self.rules_fired),
            "plan_cache_hit": self.plan_cache_hit,
            "parse_cache_hit": self.parse_cache_hit,
            "plan_fingerprint": self.plan_fingerprint,
            "route": self.route,
            "slow": self.slow,
            "instrumented": self.instrumented,
            "report": None if self.report is None else self.report.as_dict(),
        }

    def __repr__(self):
        return "QueryRecord(#%d %s %s %.3fms%s)" % (
            self.qid, self.kind, self.status, self.wall_ms,
            " SLOW" if self.slow else "",
        )


def _flag(value):
    """Cache flags as queryable ints (None stays None)."""
    return value if value is None else int(value)


class QueryHistory:
    """A bounded ring buffer of :class:`QueryRecord` instances.

    Args:
        capacity: how many most-recent records to keep.
        slow_ms: the slow-query threshold in milliseconds; None leaves
            the flight recorder disarmed (no instrumented runs, no
            attached reports).
        enabled: start recording immediately.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when set, each record also bumps ``queries_total`` /
            ``query_errors_total`` counters and a ``query_wall_ms``
            histogram labeled by kind, so ``sys_metrics`` has live
            content wherever the recorder is on.
    """

    __slots__ = ("capacity", "slow_ms", "enabled", "registry",
                 "_records", "_next_id")

    def __init__(self, capacity=256, slow_ms=None, enabled=True,
                 registry=None):
        self.capacity = max(1, int(capacity))
        self.slow_ms = slow_ms
        self.enabled = bool(enabled)
        self.registry = registry
        self._records = deque(maxlen=self.capacity)
        self._next_id = 0

    # -- switches ---------------------------------------------------------

    def enable(self, slow_ms=None):
        """Turn recording on (optionally arming the slow threshold)."""
        self.enabled = True
        if slow_ms is not None:
            self.slow_ms = slow_ms
        return self

    def disable(self):
        """Stop recording (kept records stay readable)."""
        self.enabled = False
        return self

    # -- recording --------------------------------------------------------

    def add(self, kind, query, elapsed, result=None, stats=None,
            capture=None, error=None):
        """Build and append the record for one finished (or failed) run.

        Called by the workbench from a ``finally`` block; ``capture`` is
        the pipeline's scratch dict (cache flags, fired rules, route,
        fingerprint, and — on instrumented runs — the OpReport).
        """
        capture = capture or {}
        wall_ms = elapsed * 1e3
        slow = self.slow_ms is not None and wall_ms >= self.slow_ms
        text = query_text(query)
        record = QueryRecord(
            self._next_id,
            kind,
            text,
            wall_ms,
            rows=None if error is not None else _cardinality(result),
            tuples_materialized=(
                stats.tuples_materialized if stats is not None else 0
            ),
            rules_fired=capture.get("rules"),
            plan_cache_hit=capture.get("plan_cache_hit"),
            parse_cache_hit=capture.get("parse_cache_hit"),
            plan_fingerprint=capture.get("plan_fingerprint"),
            route=capture.get("route"),
            error=(
                None if error is None
                else "%s: %s" % (type(error).__name__, error)
            ),
            slow=slow,
            instrumented=bool(capture.get("instrumented")),
            report=capture.get("report") if slow else None,
        )
        self._next_id += 1
        self._records.append(record)
        if self.registry is not None:
            self.registry.counter("queries_total", kind=kind).inc()
            if error is not None:
                self.registry.counter("query_errors_total", kind=kind).inc()
            self.registry.histogram("query_wall_ms", kind=kind).observe(
                wall_ms
            )
        return record

    # -- reading ----------------------------------------------------------

    def records(self):
        """All retained records, oldest first."""
        return list(self._records)

    def last(self):
        """The most recent record, or None."""
        return self._records[-1] if self._records else None

    def slow_queries(self):
        """Retained records that crossed the armed threshold."""
        return [record for record in self._records if record.slow]

    def clear(self):
        self._records.clear()

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    # -- export -----------------------------------------------------------

    def as_dicts(self):
        return [record.as_dict() for record in self._records]

    def as_json_lines(self):
        """One JSON object per record (the CI flight-recorder artifact)."""
        return "\n".join(
            json.dumps(entry, sort_keys=True, default=str)
            for entry in self.as_dicts()
        )

    def __repr__(self):
        return "QueryHistory(%d/%d records, %s%s)" % (
            len(self._records),
            self.capacity,
            "recording" if self.enabled else "off",
            "" if self.slow_ms is None else ", slow>=%gms" % self.slow_ms,
        )


def _cardinality(result):
    """Rows out of a result: relation size or Datalog model fact count."""
    if result is None:
        return None
    count = getattr(result, "count", None)
    if callable(count):  # FactStore
        return count()
    try:
        return len(result)
    except TypeError:
        return None


def make_history(history, slow_ms=None, registry=None):
    """The workbench's history-argument idiom.

    ``history`` may be an existing :class:`QueryHistory` (adopted as
    is), True (recording on), or None/False (recorder present but off —
    still zero-cost, still enableable later).  A ``slow_ms`` threshold
    arms the flight recorder and implies recording on.
    """
    if isinstance(history, QueryHistory):
        if slow_ms is not None:
            history.slow_ms = slow_ms
        if history.registry is None:
            history.registry = registry
        return history
    enabled = bool(history) or slow_ms is not None
    return QueryHistory(slow_ms=slow_ms, enabled=enabled, registry=registry)
