"""Span-based tracing: runtime behavior as first-class data.

A :class:`Tracer` records a tree of :class:`Span` objects — named,
nested, wall-clock-timed regions of work — plus zero-duration *events*
(lock waits, aborts).  Spans can snapshot any counter object exposing
``copy()``/``diff()``/``as_dict()`` (in practice
:class:`~repro.datalog.stats.EngineStatistics`), so each span carries
the counter *deltas* accrued during its lifetime without any per-counter
bookkeeping at the instrumentation site.

Tracing is strictly opt-in and zero-cost when off: the default tracer
everywhere is :data:`NULL_TRACER`, a no-op singleton whose ``span()``
returns one shared null context manager — no Span objects are allocated
on the default path (a tier-1 test pins this).

Usage::

    tracer = Tracer()
    with tracer.span("stratum", index=0) as span:
        ...
        span.set(rounds=3)
    tracer.event("deadlock_abort", txn=2)
    print(render_trace(tracer))          # see repro.obs.export
"""

from __future__ import annotations

import time


class Span:
    """One named, timed region of work (or a zero-duration event).

    Attributes:
        name: the span's label.
        kind: ``"span"`` or ``"event"``.
        attributes: free-form key/value annotations.
        children: nested spans, in start order.
        elapsed: wall-clock seconds (None while the span is open).
        counters: counter deltas accrued during the span (dict), when a
            stats object was attached; else None.
    """

    __slots__ = (
        "name",
        "kind",
        "attributes",
        "children",
        "elapsed",
        "counters",
        "_tracer",
        "_stats",
        "_snapshot",
        "_start",
    )

    def __init__(self, tracer, name, stats=None, attributes=None,
                 kind="span"):
        self.name = name
        self.kind = kind
        self.attributes = dict(attributes) if attributes else {}
        self.children = []
        self.elapsed = None
        self.counters = None
        self._tracer = tracer
        self._stats = stats
        self._snapshot = None
        self._start = None

    def start(self):
        """Attach under the tracer's current span and start the clock."""
        tracer = self._tracer
        stack = tracer._stack
        parent = stack[-1] if stack else None
        (parent.children if parent is not None else tracer.roots).append(self)
        stack.append(self)
        if self._stats is not None:
            self._snapshot = self._stats.copy()
        self._start = tracer._clock()
        return self

    def finish(self):
        """Stop the clock, capture counter deltas, pop the stack."""
        tracer = self._tracer
        if self.elapsed is None:
            self.elapsed = tracer._clock() - self._start
        if self._snapshot is not None:
            self.counters = self._stats.diff(self._snapshot).as_dict()
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        return self

    def set(self, **attributes):
        """Annotate the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.finish()
        return False

    def walk(self, depth=0):
        """Yield ``(depth, span)`` pairs, pre-order."""
        yield depth, self
        for child in self.children:
            for pair in child.walk(depth + 1):
                yield pair

    def __repr__(self):
        timing = (
            "open" if self.elapsed is None else "%.3fms" % (self.elapsed * 1e3)
        )
        return "Span(%s, %s, %d children)" % (
            self.name, timing, len(self.children)
        )


class Tracer:
    """Collects a forest of spans for one traced workload.

    Not thread-safe (nesting is a per-tracer stack); use one tracer per
    logical activity, like one EngineStatistics per engine run.
    """

    enabled = True

    __slots__ = ("roots", "_stack", "_clock")

    def __init__(self, clock=time.perf_counter):
        self.roots = []
        self._stack = []
        self._clock = clock

    def span(self, name, stats=None, **attributes):
        """A new (unstarted) span; use as a context manager."""
        return Span(self, name, stats=stats, attributes=attributes)

    def begin(self, name, stats=None, **attributes):
        """Start a span without ``with`` (pair with :meth:`end`)."""
        return self.span(name, stats=stats, **attributes).start()

    def end(self, span):
        span.finish()
        return span

    def event(self, name, **attributes):
        """Record a zero-duration event under the current span."""
        span = Span(self, name, attributes=attributes, kind="event")
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        span.elapsed = 0.0
        return span

    def current(self):
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def walk(self):
        """Yield ``(depth, span)`` across all roots, pre-order."""
        for root in self.roots:
            for pair in root.walk():
                yield pair

    def spans(self, name=None, kind=None):
        """All recorded spans, optionally filtered by name/kind."""
        return [
            span
            for _, span in self.walk()
            if (name is None or span.name == name)
            and (kind is None or span.kind == kind)
        ]

    def clear(self):
        self.roots = []
        self._stack = []

    def __repr__(self):
        return "Tracer(%d roots, %d open)" % (
            len(self.roots), len(self._stack)
        )


class _NullSpan:
    """The shared do-nothing span; every call site gets this instance."""

    __slots__ = ()

    name = "null"
    kind = "null"
    attributes = {}
    children = ()
    elapsed = 0.0
    counters = None

    def start(self):
        return self

    def finish(self):
        return self

    def set(self, **attributes):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


class NullTracer:
    """The disabled tracer: a no-op singleton, zero allocation per use.

    Every method returns the shared :class:`_NullSpan` (or nothing), so
    instrumented code can call ``tracer.span(...)`` unconditionally.
    """

    enabled = False

    __slots__ = ()

    roots = ()

    def span(self, name, stats=None, **attributes):
        return _NULL_SPAN

    def begin(self, name, stats=None, **attributes):
        return _NULL_SPAN

    def end(self, span):
        return span

    def event(self, name, **attributes):
        return _NULL_SPAN

    def current(self):
        return None

    def walk(self):
        return iter(())

    def spans(self, name=None, kind=None):
        return []

    def clear(self):
        pass

    def __repr__(self):
        return "NullTracer()"


_NULL_SPAN = _NullSpan()

#: The process-wide disabled tracer: the default everywhere.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer):
    """``tracer`` or the null singleton — the idiom for defaults."""
    return NULL_TRACER if tracer is None else tracer
