"""Attribute domains for the relational model.

The relational model of the paper's "relational theory" era is untyped in
most theoretical treatments (tuples over an abstract countable domain).
Practical engines type their columns, so we support both styles:

* :data:`ANY` — the abstract theoretical domain; accepts every hashable
  Python value.  This is the default, so all the theory modules
  (dependencies, chase, Datalog) can ignore typing entirely.
* :data:`INTEGER`, :data:`STRING`, :data:`FLOAT`, :data:`BOOLEAN` — concrete
  domains for users who want schema-time value checking.

A :class:`Domain` is a named value predicate.  Domains compare by name so
that schemas built in different places are compatible.
"""

from __future__ import annotations

from ..errors import SchemaError


class Domain:
    """A named set of admissible attribute values.

    Args:
        name: human-readable domain name (also the identity of the domain).
        contains: predicate deciding membership; defaults to "everything
            hashable".
    """

    __slots__ = ("name", "_contains")

    def __init__(self, name, contains=None):
        if not name:
            raise SchemaError("a domain needs a non-empty name")
        self.name = name
        self._contains = contains

    def __contains__(self, value):
        if self._contains is None:
            return _is_hashable(value)
        return _is_hashable(value) and bool(self._contains(value))

    def validate(self, value):
        """Raise :class:`SchemaError` unless ``value`` belongs to the domain."""
        if value not in self:
            raise SchemaError(
                "value %r does not belong to domain %s" % (value, self.name)
            )
        return value

    def __eq__(self, other):
        return isinstance(other, Domain) and other.name == self.name

    def __hash__(self):
        return hash(("Domain", self.name))

    def __repr__(self):
        return "Domain(%r)" % self.name


def _is_hashable(value):
    try:
        hash(value)
    except TypeError:
        return False
    return True


#: The abstract theoretical domain: any hashable value.
ANY = Domain("any")

#: Python ints (bools excluded: theory treats them as a separate domain).
INTEGER = Domain(
    "integer", lambda v: isinstance(v, int) and not isinstance(v, bool)
)

#: Python strings.
STRING = Domain("string", lambda v: isinstance(v, str))

#: Python floats and ints (numeric comparisons work across both).
FLOAT = Domain(
    "float",
    lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
)

#: Python bools.
BOOLEAN = Domain("boolean", lambda v: isinstance(v, bool))

#: Registry of the built-in domains by name, for schema (de)serialization.
BUILTIN_DOMAINS = {
    d.name: d for d in (ANY, INTEGER, STRING, FLOAT, BOOLEAN)
}


def domain_by_name(name):
    """Look up a built-in domain by its name.

    Raises:
        SchemaError: if the name is unknown.
    """
    try:
        return BUILTIN_DOMAINS[name]
    except KeyError:
        raise SchemaError("unknown domain name %r" % (name,)) from None
