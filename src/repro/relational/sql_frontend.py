"""A small SQL frontend compiling SELECT blocks to relational algebra.

The relational paradigm reached practice through SQL engines (the
Berkeley–IBM experiments the paper credits with "establishing the
feasibility of relational databases").  This frontend covers the classical
set-semantics core that maps directly onto the algebra:

* ``SELECT [DISTINCT] cols FROM r1 [a1], r2 [a2], ... [WHERE cond]``
* column references ``alias.col`` or bare ``col`` (when unambiguous)
* ``WHERE`` with ``=, !=, <>, <, <=, >, >=``, ``AND``, ``OR``, ``NOT``,
  parentheses, string/int/float literals
* ``UNION``, ``INTERSECT``, ``EXCEPT`` between SELECT blocks
* ``SELECT *`` expanding to all columns of the FROM list

Everything evaluates under set semantics (DISTINCT is implicit, matching
the theoretical model; the keyword is accepted and ignored).

Example::

    expr = parse_sql("SELECT p1.p FROM parent p1, parent p2 "
                     "WHERE p1.c = p2.p AND p2.c = 'cal'")
    result = evaluate(expr, db)
"""

from __future__ import annotations

import re

from ..errors import ParseError
from . import algebra as ra
from .dml import DeleteStatement, InsertStatement, UpdateStatement
from .relation import Relation
from .schema import RelationSchema

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>\d+\.\d+|\d+)
      | (?P<op><>|!=|<=|>=|=|<|>|\(|\)|,|\.|\*)
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "or",
    "not",
    "union",
    "intersect",
    "except",
    "as",
    "insert",
    "into",
    "values",
    "delete",
    "update",
    "set",
}


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self):
        return "_Token(%r, %r)" % (self.kind, self.value)


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if not match or match.start() != pos:
            raise ParseError(
                "unexpected character %r" % text[pos], position=pos, text=text
            )
        if match.group("string") is not None:
            raw = match.group("string")
            tokens.append(_Token("string", raw[1:-1].replace("''", "'"), pos))
        elif match.group("number") is not None:
            raw = match.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("number", value, pos))
        elif match.group("op") is not None:
            op = match.group("op")
            tokens.append(_Token("op", "!=" if op == "<>" else op, pos))
        else:
            name = match.group("name")
            lowered = name.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token("keyword", lowered, pos))
            else:
                tokens.append(_Token("name", name, pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens, text):
        self.tokens = tokens
        self.text = text
        self.index = 0

    # -- token helpers -------------------------------------------------

    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self.text)
        self.index += 1
        return token

    def expect(self, kind, value=None):
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            raise ParseError(
                "expected %s%s, got %r"
                % (kind, " %r" % value if value else "", token.value),
                position=token.position,
                text=self.text,
            )
        return token

    def accept(self, kind, value=None):
        token = self.peek()
        if (
            token is not None
            and token.kind == kind
            and (value is None or token.value == value)
        ):
            self.index += 1
            return token
        return None

    # -- grammar -----------------------------------------------------------

    def parse_statement(self):
        head = self.peek()
        if head is not None and head.kind == "keyword" and head.value in (
            "insert", "delete", "update"
        ):
            statement = getattr(self, "parse_%s" % head.value)()
            trailing = self.peek()
            if trailing is not None:
                raise ParseError(
                    "trailing input starting at %r" % (trailing.value,),
                    position=trailing.position,
                    text=self.text,
                )
            return statement
        expr = self.parse_query()
        trailing = self.peek()
        if trailing is not None:
            raise ParseError(
                "trailing input starting at %r" % (trailing.value,),
                position=trailing.position,
                text=self.text,
            )
        return expr

    def parse_query(self):
        expr = self.parse_select()
        while True:
            if self.accept("keyword", "union"):
                expr = ra.Union(expr, self.parse_select())
            elif self.accept("keyword", "intersect"):
                expr = ra.Intersection(expr, self.parse_select())
            elif self.accept("keyword", "except"):
                expr = ra.Difference(expr, self.parse_select())
            else:
                break
        return expr

    # -- DML ---------------------------------------------------------------

    def parse_insert(self):
        self.expect("keyword", "insert")
        self.expect("keyword", "into")
        target = self.expect("name").value
        if self.accept("keyword", "values"):
            rows = [self.parse_value_row()]
            while self.accept("op", ","):
                rows.append(self.parse_value_row())
            if len({len(row) for row in rows}) != 1:
                raise ParseError(
                    "VALUES rows have inconsistent arities", text=self.text
                )
            source = _ValuesSource(target, rows)
        else:
            source = self.parse_query()
        return InsertStatement(target, source)

    def parse_value_row(self):
        self.expect("op", "(")
        values = [self.parse_literal()]
        while self.accept("op", ","):
            values.append(self.parse_literal())
        self.expect("op", ")")
        return tuple(values)

    def parse_literal(self):
        token = self.next()
        if token.kind not in ("string", "number"):
            raise ParseError(
                "expected a literal in VALUES, got %r" % (token.value,),
                position=token.position,
                text=self.text,
            )
        return token.value

    def parse_delete(self):
        self.expect("keyword", "delete")
        self.expect("keyword", "from")
        target = self.expect("name").value
        return DeleteStatement(target, self.parse_matched(target))

    def parse_update(self):
        self.expect("keyword", "update")
        target = self.expect("name").value
        self.expect("keyword", "set")
        assignments = [self.parse_assignment()]
        while self.accept("op", ","):
            assignments.append(self.parse_assignment())
        return UpdateStatement(
            target, assignments, self.parse_matched(target)
        )

    def parse_assignment(self):
        column = self.expect("name").value
        self.expect("op", "=")
        return (column, self.parse_operand())

    def parse_matched(self, target):
        """The matched-row scan: the target filtered by WHERE (or all).

        Compiled through the same :class:`_Block` machinery as a
        ``SELECT * FROM target WHERE …``, so the predicate side of a
        DELETE/UPDATE is planned and optimized like any query.
        """
        condition = None
        if self.accept("keyword", "where"):
            condition = self.parse_or()
        return _Block(None, [(target, target)], condition).compile()

    def parse_select(self):
        self.expect("keyword", "select")
        self.accept("keyword", "distinct")
        columns = self.parse_select_list()
        self.expect("keyword", "from")
        sources = self.parse_from_list()
        condition = None
        if self.accept("keyword", "where"):
            condition = self.parse_or()
        return _Block(columns, sources, condition).compile()

    def parse_select_list(self):
        if self.accept("op", "*"):
            return None  # SELECT *
        columns = [self.parse_column_ref()]
        while self.accept("op", ","):
            columns.append(self.parse_column_ref())
        return columns

    def parse_column_ref(self):
        first = self.expect("name").value
        if self.accept("op", "."):
            second = self.expect("name").value
            ref = (first, second)
        else:
            ref = (None, first)
        if self.accept("keyword", "as"):
            alias = self.expect("name").value
            return ref + (alias,)
        return ref + (None,)

    def parse_from_list(self):
        sources = [self.parse_source()]
        while self.accept("op", ","):
            sources.append(self.parse_source())
        return sources

    def parse_source(self):
        relation = self.expect("name").value
        self.accept("keyword", "as")
        alias_token = self.accept("name")
        alias = alias_token.value if alias_token else relation
        return (relation, alias)

    def parse_or(self):
        left = self.parse_and()
        while self.accept("keyword", "or"):
            left = ("or", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_not()
        while self.accept("keyword", "and"):
            left = ("and", left, self.parse_not())
        return left

    def parse_not(self):
        if self.accept("keyword", "not"):
            return ("not", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self):
        if self.accept("op", "("):
            inner = self.parse_or()
            self.expect("op", ")")
            return inner
        left = self.parse_operand()
        op_token = self.expect("op")
        if op_token.value not in ("=", "!=", "<", "<=", ">", ">="):
            raise ParseError(
                "expected a comparison operator, got %r" % op_token.value,
                position=op_token.position,
                text=self.text,
            )
        right = self.parse_operand()
        return ("cmp", left, op_token.value, right)

    def parse_operand(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self.text)
        if token.kind in ("string", "number"):
            self.next()
            return ("const", token.value)
        first = self.expect("name").value
        if self.accept("op", "."):
            second = self.expect("name").value
            return ("col", first, second)
        return ("col", None, first)


class _Block:
    """One SELECT block: compile to algebra with qualified attributes.

    Each FROM source is renamed to ``alias.column`` attributes, the sources
    are cross-multiplied, the WHERE condition applied, and the select list
    projected (and renamed back to bare output names).
    """

    def __init__(self, columns, sources, condition):
        self.columns = columns
        self.sources = sources
        self.condition = condition
        aliases = [alias for _, alias in sources]
        if len(set(aliases)) != len(aliases):
            raise ParseError("duplicate FROM aliases: %r" % (aliases,))
        self.aliases = aliases

    def compile(self):
        expr = None
        for relation, alias in self.sources:
            source = _QualifyRelation(relation, alias)
            expr = source if expr is None else ra.Product(expr, source)
        if self.condition is not None:
            expr = _DeferredSelection(expr, self.condition, self.aliases)
        return _DeferredProjection(expr, self.columns, self.aliases)


class _ValuesSource(ra.AlgebraExpr):
    """``INSERT … VALUES`` rows as a deferred constant relation.

    The rows' schema is the *target's* (positional assignment), which is
    only known once a database schema is — so resolution is deferred
    like the other SQL nodes, and arity mismatches surface as
    :class:`ParseError` at planning time.
    """

    __slots__ = ("target", "rows")

    def __init__(self, target, rows):
        self.target = target
        self.rows = tuple(rows)

    def _relation(self, db_schema):
        target = db_schema[self.target]
        if self.rows and len(self.rows[0]) != target.arity:
            raise ParseError(
                "VALUES arity %d does not match %s arity %d"
                % (len(self.rows[0]), self.target, target.arity)
            )
        schema = RelationSchema("values", target.attributes)
        return Relation(schema, self.rows)

    def schema(self, db_schema):
        return self._relation(db_schema).schema

    def evaluate_node(self, db, evaluate):
        return self._relation(db.schema())

    def canonicalize_node(self, db_schema, recurse):
        return ra.ConstantRelation(self._relation(db_schema))

    def __repr__(self):
        return "_ValuesSource(%r, %d rows)" % (self.target, len(self.rows))

    def __str__(self):
        return "VALUES[%d rows]" % len(self.rows)


class _QualifyRelation(ra.AlgebraExpr):
    """A base relation with attributes renamed to ``alias.column``."""

    __slots__ = ("relation", "alias")

    def __init__(self, relation, alias):
        self.relation = relation
        self.alias = alias

    def schema(self, db_schema):
        return db_schema[self.relation].prefixed(self.alias)

    def evaluate_node(self, db, evaluate):
        base = db[self.relation]
        return type(base)(
            base.schema.prefixed(self.alias), base.tuples, validate=False
        )

    def canonicalize_node(self, db_schema, recurse):
        base = db_schema[self.relation]
        mapping = {a: "%s.%s" % (self.alias, a) for a in base.attributes}
        return ra.Rename(ra.RelationRef(self.relation), mapping)

    def __repr__(self):
        return "_QualifyRelation(%r, %r)" % (self.relation, self.alias)

    def __str__(self):
        return "%s AS %s" % (self.relation, self.alias)


class _DeferredName:
    """Column-name resolution shared by the deferred SQL nodes.

    Bare column names resolve against the qualified schema; ambiguity and
    misses raise :class:`ParseError` at schema-resolution time, when the
    database schema is first known.
    """

    @staticmethod
    def resolve(schema, alias, column, aliases):
        if alias is not None:
            name = "%s.%s" % (alias, column)
            if name not in schema:
                raise ParseError(
                    "unknown column %s (available: %s)"
                    % (name, ", ".join(schema.attributes))
                )
            return name
        matches = [
            "%s.%s" % (a, column)
            for a in aliases
            if "%s.%s" % (a, column) in schema
        ]
        if not matches:
            raise ParseError("unknown column %r" % (column,))
        if len(matches) > 1:
            raise ParseError(
                "ambiguous column %r (could be %s)"
                % (column, ", ".join(matches))
            )
        return matches[0]


class _DeferredSelection(ra.AlgebraExpr):
    """WHERE clause whose column names resolve once the schema is known."""

    __slots__ = ("child", "tree", "aliases")

    def __init__(self, child, tree, aliases):
        self.child = child
        self.tree = tree
        self.aliases = aliases

    def _condition(self, schema):
        return _tree_to_condition(self.tree, schema, self.aliases)

    def schema(self, db_schema):
        schema = self.child.schema(db_schema)
        self._condition(schema)  # validates column names
        return schema

    def evaluate_node(self, db, evaluate):
        child = evaluate(self.child, db)
        condition = self._condition(child.schema)
        return child.select(condition.compile(child.schema))

    def canonicalize_node(self, db_schema, recurse):
        child = recurse(self.child)
        return ra.Selection(child, self._condition(child.schema(db_schema)))

    def children(self):
        return (self.child,)

    def __repr__(self):
        return "_DeferredSelection(%r, %r)" % (self.child, self.tree)

    def __str__(self):
        return "sigma[WHERE](%s)" % (self.child,)


class _DeferredProjection(ra.AlgebraExpr):
    """SELECT list resolved against the qualified schema; handles ``*``."""

    __slots__ = ("child", "columns", "aliases")

    def __init__(self, child, columns, aliases):
        self.child = child
        self.columns = columns
        self.aliases = aliases

    def _plan(self, schema):
        if self.columns is None:
            qualified = list(schema.attributes)
        else:
            qualified = [
                _DeferredName.resolve(schema, alias, column, self.aliases)
                for alias, column, _ in self.columns
            ]
        outputs = []
        for i, name in enumerate(qualified):
            if self.columns is not None and self.columns[i][2]:
                outputs.append(self.columns[i][2])
            else:
                outputs.append(name.split(".", 1)[1] if "." in name else name)
        if len(set(qualified)) != len(qualified):
            raise ParseError("duplicate columns in SELECT list")
        if len(set(outputs)) != len(outputs):
            raise ParseError(
                "output column names clash: %r (use AS aliases)" % (outputs,)
            )
        return qualified, outputs

    def schema(self, db_schema):
        schema = self.child.schema(db_schema)
        qualified, outputs = self._plan(schema)
        return schema.project(qualified).rename(
            dict(zip(qualified, outputs)), name="result"
        )

    def evaluate_node(self, db, evaluate):
        child = evaluate(self.child, db)
        qualified, outputs = self._plan(child.schema)
        return (
            child.project(qualified)
            .rename(dict(zip(qualified, outputs)), name="result")
        )

    def canonicalize_node(self, db_schema, recurse):
        child = recurse(self.child)
        qualified, outputs = self._plan(child.schema(db_schema))
        expr = ra.Projection(child, tuple(qualified))
        mapping = {q: o for q, o in zip(qualified, outputs) if q != o}
        return ra.Rename(expr, mapping) if mapping else expr

    def children(self):
        return (self.child,)

    def __repr__(self):
        return "_DeferredProjection(%r, %r)" % (self.child, self.columns)

    def __str__(self):
        return "pi[SELECT](%s)" % (self.child,)


def _tree_to_condition(tree, schema, aliases):
    kind = tree[0]
    if kind == "and":
        return ra.And(
            _tree_to_condition(tree[1], schema, aliases),
            _tree_to_condition(tree[2], schema, aliases),
        )
    if kind == "or":
        return ra.Or(
            _tree_to_condition(tree[1], schema, aliases),
            _tree_to_condition(tree[2], schema, aliases),
        )
    if kind == "not":
        return ra.Not(_tree_to_condition(tree[1], schema, aliases))
    if kind == "cmp":
        _, left, op, right = tree
        return ra.Comparison(
            _operand(left, schema, aliases), op, _operand(right, schema, aliases)
        )
    raise ParseError("unknown condition node %r" % (kind,))


def _operand(node, schema, aliases):
    if node[0] == "const":
        return ra.Const(node[1])
    _, alias, column = node
    return ra.Attr(_DeferredName.resolve(schema, alias, column, aliases))


def parse_sql(text):
    """Parse a SQL statement into a relational-algebra expression.

    Args:
        text: the SQL text (one statement, optionally with set operators).

    Returns:
        An :class:`~repro.relational.algebra.AlgebraExpr` evaluable with
        :func:`~repro.relational.algebra.evaluate` — or, for
        ``INSERT``/``DELETE``/``UPDATE`` text, a
        :class:`~repro.relational.dml.DMLStatement` the workbench
        executes through the shared pipeline (``wb.sql``).

    Raises:
        ParseError: on syntax errors; column-resolution errors surface when
            the expression is first type-checked or evaluated.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty SQL statement", text=text)
    return _Parser(tokens, text).parse_statement()


def run_sql(text, db):
    """Parse and evaluate a SQL statement against a database."""
    return ra.evaluate(parse_sql(text), db)
