"""DML statements: mutation through the same plan pipeline reads use.

``parse_sql`` returns one of these for ``INSERT``/``DELETE``/``UPDATE``
text.  Each statement carries the *relational* side of the mutation as
an ordinary :class:`~repro.relational.algebra.AlgebraExpr` — the
``INSERT … SELECT`` source, or the matched-row scan a ``WHERE`` clause
induces — which the workbench plans, optimizes, caches, and executes
exactly like a query (including ``executor="compiled"``).  The statement
then turns the executed relation into a tuple delta
(:meth:`DMLStatement.delta`) that ``Database.apply_delta`` commits.

Set semantics throughout, matching the rest of the model: inserting an
existing tuple is a no-op, updating a tuple onto an existing one merges,
and ``rows_affected`` counts tuples actually added plus actually
removed.
"""

from __future__ import annotations

from ..errors import ParseError
from . import algebra as ra

__all__ = [
    "DMLResult",
    "DMLStatement",
    "DeleteStatement",
    "InsertStatement",
    "UpdateStatement",
]


class DMLResult:
    """What a DML statement returns: the delta, accounted.

    ``len()`` is ``rows_affected`` (tuples added + tuples removed), so
    the flight recorder's cardinality column and ``sys_query_log`` show
    the mutation's size the way they show a query's result size.
    """

    __slots__ = ("kind", "target", "rows_matched", "rows_inserted",
                 "rows_deleted", "relation")

    def __init__(self, kind, target, rows_matched, inserted, deleted,
                 relation):
        self.kind = kind
        self.target = target
        self.rows_matched = rows_matched
        self.rows_inserted = inserted
        self.rows_deleted = deleted
        self.relation = relation

    @property
    def rows_affected(self):
        return self.rows_inserted + self.rows_deleted

    def __len__(self):
        return self.rows_affected

    def __repr__(self):
        return "DMLResult(%s %s: matched=%d +%d/-%d)" % (
            self.kind, self.target, self.rows_matched,
            self.rows_inserted, self.rows_deleted,
        )


def _aligned_tuples(executed, target_relation):
    """Executed tuples reordered into the target's attribute order.

    The matched-row scan normally comes back in target order already;
    an optimizer rewrite that reorders the projection is still correct
    as long as the names line up.
    """
    want = target_relation.schema.attributes
    if executed.schema.attributes == want:
        return set(executed.tuples)
    if set(executed.schema.attributes) != set(want):
        raise ParseError(
            "matched rows have attributes %r, target %r has %r"
            % (executed.schema.attributes, target_relation.schema.name,
               want)
        )
    positions = [executed.schema.position(a) for a in want]
    return {tuple(row[p] for p in positions) for row in executed.tuples}


class DMLStatement:
    """Base: a mutation of ``target`` with a plannable relational side."""

    kind = None

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def source_expr(self):
        """The algebra expression the pipeline must execute (or None).

        For INSERT this is the row source; for DELETE/UPDATE the
        matched-row scan over the target.
        """
        raise NotImplementedError

    def delta(self, executed, target_relation):
        """``(insert_rows, delete_rows, rows_matched)`` from the executed
        relational side."""
        raise NotImplementedError


class InsertStatement(DMLStatement):
    """``INSERT INTO target VALUES (…), …`` or ``INSERT INTO target
    SELECT …``.

    The source's arity must match the target's; attribute *names* need
    not (positional assignment, as in SQL).
    """

    kind = "insert"

    __slots__ = ("source",)

    def __init__(self, target, source):
        super().__init__(target)
        self.source = source

    def source_expr(self):
        return self.source

    def delta(self, executed, target_relation):
        arity = target_relation.schema.arity
        if executed.schema.arity != arity:
            raise ParseError(
                "INSERT INTO %s: source arity %d does not match target "
                "arity %d"
                % (self.target, executed.schema.arity, arity)
            )
        return set(executed.tuples), set(), len(executed)

    def __repr__(self):
        return "InsertStatement(%r, %r)" % (self.target, self.source)


class DeleteStatement(DMLStatement):
    """``DELETE FROM target [WHERE …]``.

    The matched-row scan (the whole relation when there is no WHERE)
    runs through the plan pipeline; the delta removes exactly the
    matched tuples.
    """

    kind = "delete"

    __slots__ = ("matched",)

    def __init__(self, target, matched):
        super().__init__(target)
        self.matched = matched

    def source_expr(self):
        return self.matched

    def delta(self, executed, target_relation):
        matched = _aligned_tuples(executed, target_relation)
        return set(), matched, len(matched)

    def __repr__(self):
        return "DeleteStatement(%r)" % (self.target,)


class UpdateStatement(DMLStatement):
    """``UPDATE target SET col = value, … [WHERE …]``.

    Assignment right-hand sides are constants or column references into
    the target's own row (``SET a = b`` copies within the tuple).  The
    matched rows run through the pipeline; each is transformed and the
    delta is delete-matched + insert-transformed (set semantics: a no-op
    transform cancels out).
    """

    kind = "update"

    __slots__ = ("assignments", "matched")

    def __init__(self, target, assignments, matched):
        super().__init__(target)
        self.assignments = tuple(assignments)
        self.matched = matched

    def source_expr(self):
        return self.matched

    def _transformer(self, schema):
        """Compile the SET list into a row → row function."""
        positions = {a: i for i, a in enumerate(schema.attributes)}
        compiled = []
        for column, operand in self.assignments:
            if column not in positions:
                raise ParseError(
                    "UPDATE %s: unknown column %r (has: %s)"
                    % (self.target, column, ", ".join(schema.attributes))
                )
            if operand[0] == "const":
                compiled.append((positions[column], None, operand[1]))
            else:
                source = operand[2]
                if source not in positions:
                    raise ParseError(
                        "UPDATE %s: unknown source column %r"
                        % (self.target, source)
                    )
                compiled.append((positions[column], positions[source], None))
        def transform(row):
            out = list(row)
            for position, source, value in compiled:
                out[position] = value if source is None else row[source]
            return tuple(out)
        return transform

    def delta(self, executed, target_relation):
        transform = self._transformer(target_relation.schema)
        matched = _aligned_tuples(executed, target_relation)
        transformed = {transform(row) for row in matched}
        return transformed, matched, len(matched)

    def __repr__(self):
        return "UpdateStatement(%r, %r)" % (self.target, self.assignments)
