"""Rule-based algebraic query optimizer.

The paper recalls that "the difficulty of query optimization … came as a
surprise, and necessitated new model development, synthesis, analysis, and
experiments".  This module implements the classical synthesis response: an
algebraic rewriter applying the equivalences every textbook optimizer is
built on, plus a cardinality estimator and a greedy join-order heuristic.

All rewrites are *semantics preserving* — the test suite checks every rule
against the evaluator on random databases (the "experiments" half of the
paper's §2(b)).

Public entry points:

* :func:`optimize` — full pipeline (cascade, pushdown, join formation,
  greedy join ordering when a database is supplied).
* :func:`push_selections` — selection cascade + pushdown only.
* :func:`estimate_cardinality` — the size model used by join ordering.
"""

from __future__ import annotations

from ..errors import AlgebraError
from . import algebra as ra

# ---------------------------------------------------------------------------
# Selection cascade and pushdown
# ---------------------------------------------------------------------------


def cascade_selections(expr):
    """Split ``sigma[a AND b](E)`` into ``sigma[a](sigma[b](E))``.

    Conjuncts become independent selections so that pushdown can route each
    to the smallest subtree mentioning its attributes.
    """
    expr = _rebuild(expr, cascade_selections)
    if isinstance(expr, ra.Selection) and isinstance(expr.condition, ra.And):
        inner = expr.child
        for part in reversed(expr.condition.parts):
            inner = ra.Selection(inner, part)
        return inner
    return expr


def push_selections(expr, db_schema=None):
    """Push selections as deep as their attribute footprints allow.

    Selections commute with each other, distribute over union/intersection/
    difference, move through rename (with attribute rewriting) and through
    projection when the projected attributes cover the condition, and slide
    into whichever side of a product/join mentions all their attributes.
    """
    expr = cascade_selections(expr)
    return _push(expr, db_schema)


def _push(expr, db_schema):
    expr = _rebuild(expr, lambda e: _push(e, db_schema))
    if not isinstance(expr, ra.Selection):
        return expr
    child = expr.child
    condition = expr.condition
    needed = condition.attributes()

    if isinstance(child, ra.Selection):
        # Commute: try pushing below the inner selection.
        pushed = _push(ra.Selection(child.child, condition), db_schema)
        return ra.Selection(pushed, child.condition)
    if isinstance(child, (ra.Union, ra.Intersection)):
        return type(child)(
            _push(ra.Selection(child.left, condition), db_schema),
            _push(ra.Selection(child.right, condition), db_schema),
        )
    if isinstance(child, ra.Difference):
        # sigma(A - B) = sigma(A) - B (pushing into B is also sound but
        # pointless: B only ever removes tuples).
        return ra.Difference(
            _push(ra.Selection(child.left, condition), db_schema),
            child.right,
        )
    if isinstance(child, ra.Projection):
        if needed <= set(child.attributes):
            return ra.Projection(
                _push(ra.Selection(child.child, condition), db_schema),
                child.attributes,
            )
        return expr
    if isinstance(child, ra.Rename):
        inverse = {new: old for old, new in child.mapping.items()}
        rewritten = _rewrite_condition(condition, inverse)
        return ra.Rename(
            _push(ra.Selection(child.child, rewritten), db_schema),
            child.mapping,
        )
    if isinstance(child, (ra.Product, ra.NaturalJoin)) and db_schema is not None:
        left_attrs = set(child.left.schema(db_schema).attributes)
        right_attrs = set(child.right.schema(db_schema).attributes)
        if needed <= left_attrs:
            return type(child)(
                _push(ra.Selection(child.left, condition), db_schema),
                child.right,
            )
        if needed <= right_attrs:
            return type(child)(
                child.left,
                _push(ra.Selection(child.right, condition), db_schema),
            )
        return expr
    return expr


def _rewrite_condition(condition, mapping):
    """Rename the attributes mentioned in a condition via ``mapping``."""
    if isinstance(condition, ra.Comparison):
        return ra.Comparison(
            _rewrite_operand(condition.left, mapping),
            condition.op,
            _rewrite_operand(condition.right, mapping),
        )
    if isinstance(condition, ra.And):
        return ra.And(*[_rewrite_condition(p, mapping) for p in condition.parts])
    if isinstance(condition, ra.Or):
        return ra.Or(*[_rewrite_condition(p, mapping) for p in condition.parts])
    if isinstance(condition, ra.Not):
        return ra.Not(_rewrite_condition(condition.part, mapping))
    raise AlgebraError("unknown condition %r" % (condition,))


def _rewrite_operand(operand, mapping):
    if isinstance(operand, ra.Attr):
        return ra.Attr(mapping.get(operand.name, operand.name))
    return operand


# ---------------------------------------------------------------------------
# Join formation
# ---------------------------------------------------------------------------


def form_joins(expr, db_schema=None):
    """Turn ``sigma[cross-side equality](A x B)`` into a theta join.

    The physical evaluator has no special theta-join algorithm (it remains
    filter-over-product), but recognising joins matters for the join-order
    heuristic and mirrors the logical/physical split of real optimizers.
    """
    expr = _rebuild(expr, lambda e: form_joins(e, db_schema))
    if (
        isinstance(expr, ra.Selection)
        and isinstance(expr.child, ra.Product)
        and db_schema is not None
        and isinstance(expr.condition, ra.Comparison)
        and isinstance(expr.condition.left, ra.Attr)
        and isinstance(expr.condition.right, ra.Attr)
    ):
        left_attrs = set(expr.child.left.schema(db_schema).attributes)
        right_attrs = set(expr.child.right.schema(db_schema).attributes)
        a = expr.condition.left.name
        b = expr.condition.right.name
        crosses = (a in left_attrs and b in right_attrs) or (
            a in right_attrs and b in left_attrs
        )
        if crosses:
            return ra.ThetaJoin(expr.child.left, expr.child.right, expr.condition)
    return expr


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------

#: Default selectivity of an equality predicate (classical System R value).
EQUALITY_SELECTIVITY = 0.1
#: Default selectivity of a range predicate.
RANGE_SELECTIVITY = 1.0 / 3.0


def estimate_cardinality(expr, db):
    """Estimate the output size of ``expr`` over ``db``.

    A deliberately classical model: base relations use true counts,
    selections apply fixed selectivities (System R's 1/10 for equality,
    1/3 for ranges), joins divide the product by the larger side's
    distinct-count proxy, set operations use the standard bounds.
    """
    if isinstance(expr, ra.RelationRef):
        return float(len(db[expr.name]))
    if isinstance(expr, ra.ConstantRelation):
        return float(len(expr.relation))
    if isinstance(expr, ra.Selection):
        return estimate_cardinality(expr.child, db) * _selectivity(
            expr.condition
        )
    if isinstance(expr, (ra.Projection, ra.Rename)):
        return estimate_cardinality(expr.child, db)
    if isinstance(expr, ra.Product):
        return estimate_cardinality(expr.left, db) * estimate_cardinality(
            expr.right, db
        )
    if isinstance(expr, (ra.NaturalJoin, ra.ThetaJoin)):
        left = estimate_cardinality(expr.left, db)
        right = estimate_cardinality(expr.right, db)
        return left * right / max(left, right, 1.0)
    if isinstance(expr, ra.Union):
        return estimate_cardinality(expr.left, db) + estimate_cardinality(
            expr.right, db
        )
    if isinstance(expr, (ra.Difference, ra.Semijoin, ra.Antijoin)):
        return estimate_cardinality(expr.left, db)
    if isinstance(expr, ra.Intersection):
        return min(
            estimate_cardinality(expr.left, db),
            estimate_cardinality(expr.right, db),
        )
    if isinstance(expr, ra.Division):
        return max(estimate_cardinality(expr.left, db), 1.0)
    # Unknown/extension nodes: recurse into children pessimistically.
    children = expr.children()
    if children:
        return max(estimate_cardinality(c, db) for c in children)
    return 1.0


def _selectivity(condition):
    if isinstance(condition, ra.Comparison):
        if condition.op == "=":
            return EQUALITY_SELECTIVITY
        if condition.op == "!=":
            return 1.0 - EQUALITY_SELECTIVITY
        return RANGE_SELECTIVITY
    if isinstance(condition, ra.And):
        out = 1.0
        for part in condition.parts:
            out *= _selectivity(part)
        return out
    if isinstance(condition, ra.Or):
        out = 1.0
        for part in condition.parts:
            out *= 1.0 - _selectivity(part)
        return 1.0 - out
    if isinstance(condition, ra.Not):
        return 1.0 - _selectivity(condition.part)
    return 0.5


# ---------------------------------------------------------------------------
# Greedy join ordering
# ---------------------------------------------------------------------------


def reorder_joins(expr, db):
    """Greedily reorder chains of natural joins by estimated cardinality.

    Flattens maximal natural-join trees, then repeatedly joins the pair
    with the smallest estimated result — the classical greedy heuristic
    that avoids the NP-hard exact ordering problem.

    A natural join's output lists the left attributes before the right
    side's new ones, so reordering changes column order; under a set
    operation that breaks union compatibility (found by the conformance
    fuzzer).  When the greedy order permutes the columns, a permutation
    projection restores the original order.
    """
    expr = _rebuild(expr, lambda e: reorder_joins(e, db))
    if not isinstance(expr, ra.NaturalJoin):
        return expr
    leaves = _flatten_joins(expr)
    if len(leaves) <= 2:
        return expr
    original = expr.schema(db.schema()).attributes
    parts = list(leaves)
    while len(parts) > 1:
        best = None
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                candidate = ra.NaturalJoin(parts[i], parts[j])
                cost = estimate_cardinality(candidate, db)
                if best is None or cost < best[0]:
                    best = (cost, i, j, candidate)
        _, i, j, candidate = best
        parts = [
            p for k, p in enumerate(parts) if k not in (i, j)
        ] + [candidate]
    joined = parts[0]
    if joined.schema(db.schema()).attributes != original:
        joined = ra.Projection(joined, original)
    return joined


def _flatten_joins(expr):
    if isinstance(expr, ra.NaturalJoin):
        return _flatten_joins(expr.left) + _flatten_joins(expr.right)
    return [expr]


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------


def optimize(expr, db=None):
    """Run the full rewrite pipeline.

    Args:
        expr: the algebra expression to optimize.
        db: optional database; enables schema-aware pushdown through
            products/joins and cost-based join reordering.

    Returns:
        A semantically equivalent expression.
    """
    db_schema = db.schema() if db is not None else None
    expr = push_selections(expr, db_schema)
    expr = form_joins(expr, db_schema)
    if db is not None:
        expr = reorder_joins(expr, db)
    return expr


# ---------------------------------------------------------------------------
# Generic tree rebuilding
# ---------------------------------------------------------------------------


def _rebuild(expr, recurse):
    """Apply ``recurse`` to children and rebuild the node."""
    if isinstance(expr, ra.Selection):
        return ra.Selection(recurse(expr.child), expr.condition)
    if isinstance(expr, ra.Projection):
        return ra.Projection(recurse(expr.child), expr.attributes)
    if isinstance(expr, ra.Rename):
        return ra.Rename(recurse(expr.child), expr.mapping)
    if isinstance(expr, ra.ThetaJoin):
        return ra.ThetaJoin(
            recurse(expr.left), recurse(expr.right), expr.condition
        )
    if isinstance(
        expr,
        (
            ra.Product,
            ra.NaturalJoin,
            ra.Union,
            ra.Difference,
            ra.Intersection,
            ra.Division,
            ra.Semijoin,
            ra.Antijoin,
        ),
    ):
        return type(expr)(recurse(expr.left), recurse(expr.right))
    return expr
