"""Deprecated shim over :mod:`repro.opt` — the classical pipeline.

This module used to *be* the optimizer; the real machinery now lives in
:mod:`repro.opt` (catalog statistics, a toggleable rule registry, a
shared cost model, DP join enumeration, Yannakakis routing).  What
remains here is the historical public surface, each function delegating
to the corresponding rule or model under the **classic profile**: fixed
System R selectivities (1/10 equality, 1/3 range), greedy-only join
reordering, no catalog.  The behavior — down to the exact cardinality
numbers and tree shapes the original tests pin — is unchanged, and a
differential test checks classic-profile output matches the legacy
pipeline on the random-algebra fuzzer.

Prefer :class:`repro.opt.Optimizer` in new code; this surface is kept
for compatibility and as the conformance kit's mildly-optimized oracle
leg.
"""

from __future__ import annotations

from ..opt import CLASSIC_RULES, classic_optimizer
from ..opt.cost import (  # noqa: F401  (re-exported compatibility names)
    EQUALITY_SELECTIVITY,
    RANGE_SELECTIVITY,
    CostModel,
)
from ..opt.joins import greedy_order
from ..opt.rules import (
    Context,
    form_joins as _form_joins_rule,
    push_selections as _push_rule,
    split_selections as _split_rule,
)
from . import algebra as ra

__all__ = [
    "EQUALITY_SELECTIVITY",
    "RANGE_SELECTIVITY",
    "cascade_selections",
    "estimate_cardinality",
    "form_joins",
    "optimize",
    "push_selections",
    "reorder_joins",
]


def _classic_context(db=None, db_schema=None):
    return Context(db=db, db_schema=db_schema, cost=CostModel(None),
                   dp_threshold=0)


def cascade_selections(expr):
    """Split ``sigma[a AND b](E)`` into ``sigma[a](sigma[b](E))``."""
    return _split_rule(expr, _classic_context())


def push_selections(expr, db_schema=None):
    """Selection cascade + pushdown (the classical rewrite pair)."""
    ctx = _classic_context(db_schema=db_schema)
    return _push_rule(_split_rule(expr, ctx), ctx)


def form_joins(expr, db_schema=None):
    """Turn ``sigma[cross-side equality](A x B)`` into a theta join."""
    return _form_joins_rule(expr, _classic_context(db_schema=db_schema))


def estimate_cardinality(expr, db):
    """Estimate the output size of ``expr`` over ``db``.

    The deliberately classical model (true base counts, fixed
    selectivities) — now one profile of :class:`repro.opt.CostModel`.
    """
    return CostModel(None).rows(expr, db)


def reorder_joins(expr, db):
    """Greedily reorder chains of natural joins by estimated cardinality.

    When the greedy order permutes the output columns, a permutation
    projection restores the original order (reordering under a set
    operation must preserve union compatibility).
    """
    ctx = _classic_context(db=db)
    expr = _rebuild(expr, lambda e: reorder_joins(e, db))
    if not isinstance(expr, ra.NaturalJoin):
        return expr
    from ..opt.joins import flatten_joins

    leaves = flatten_joins(expr)
    if len(leaves) <= 2:
        return expr
    original = expr.schema(db.schema()).attributes
    joined = greedy_order(leaves, ctx)
    if joined.schema(db.schema()).attributes != original:
        joined = ra.Projection(joined, original)
    return joined


def optimize(expr, db=None):
    """Run the classical rewrite pipeline (cascade, pushdown, join
    formation, greedy reordering when a database is supplied).

    The full statistics-backed pipeline lives on
    :class:`repro.opt.Optimizer`; this entry point keeps the historical
    behavior for callers (and oracles) that want the old semantics.
    """
    optimizer = classic_optimizer()
    if db is None:
        # Without a database there is no schema: only the schema-free
        # subset of the classic rules applies (exactly as before).
        ctx = _classic_context()
        expr = _split_rule(expr, ctx)
        expr = _push_rule(expr, ctx)
        return _form_joins_rule(expr, ctx)
    return optimizer.optimize(expr, db)


#: Names re-exported so existing callers can introspect the profile.
CLASSIC_PROFILE = CLASSIC_RULES


def _rebuild(expr, recurse):
    """Apply ``recurse`` to children and rebuild the node (legacy helper)."""
    from ..opt.rules import rebuild

    return rebuild(expr, recurse)
