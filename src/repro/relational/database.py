"""Database instances: named relations over a database schema."""

from __future__ import annotations

from ..errors import RelationError, SchemaError
from .relation import Relation
from .schema import DatabaseSchema, RelationSchema

#: Prefix of the reserved system-relation namespace (queryable runtime
#: introspection; see :mod:`repro.obs.introspect`).  User relations may
#: not use it: the system tables must never be shadowed by data.
SYSTEM_PREFIX = "sys_"


def is_system_name(name):
    """True for names inside the reserved ``sys_`` namespace."""
    return isinstance(name, str) and name.startswith(SYSTEM_PREFIX)


class Database:
    """A mutable collection of named :class:`Relation` instances.

    The algebra/calculus evaluators and the Datalog engines all consume a
    ``Database``.  Relations are immutable; updating a relation replaces the
    binding.

    A database may additionally carry **virtual relations**: reserved
    ``sys_``-named tables whose tuples are produced by a registered
    provider at lookup time (:meth:`register_virtual`).  Virtual
    relations resolve through ``db[name]`` and appear in :meth:`schema`
    (so every query front-end can reference them) but are deliberately
    excluded from :meth:`names`, iteration, :meth:`active_domain`, and
    :meth:`copy` — enumeration-style consumers (schema hypergraphs, full
    joins, Datalog EDB ingestion, workload generators) see user data
    only.
    """

    __slots__ = ("_relations", "_catalog", "_virtual")

    def __init__(self, relations=()):
        self._relations = {}
        self._catalog = None
        self._virtual = None
        for rel in relations:
            self.add(rel)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dict(cls, data):
        """Build a database from ``{name: (attributes, rows)}``.

        ``attributes`` is a sequence of names; ``rows`` an iterable of raw
        tuples.  Convenient for tests and examples::

            db = Database.from_dict({
                "parent": (("parent", "child"),
                           [("ann", "bob"), ("bob", "cal")]),
            })
        """
        db = cls()
        for name, (attributes, rows) in data.items():
            schema = RelationSchema(name, attributes)
            db.add(Relation(schema, rows))
        return db

    # -- access ----------------------------------------------------------------

    def _check_reserved(self, name):
        if is_system_name(name):
            raise SchemaError(
                "relation name %r is in the reserved 'sys_' namespace "
                "(read-only system relations; see repro.obs.introspect)"
                % (name,)
            )

    def add(self, relation, system=False):
        """Register a relation under its schema name; names must be unique.

        ``system=True`` is the internal escape hatch for scratch
        databases that legitimately materialize ``sys_`` snapshots
        (Datalog lowering); user code must not pass it.
        """
        if not isinstance(relation, Relation):
            raise RelationError("expected Relation, got %r" % (relation,))
        name = relation.schema.name
        if not system:
            self._check_reserved(name)
        if name in self._relations:
            raise SchemaError("duplicate relation name %r" % (name,))
        self._relations[name] = relation
        self._invalidate_stats(name)
        return relation

    def replace(self, relation, system=False):
        """Register or overwrite the relation named by its schema."""
        if not system:
            self._check_reserved(relation.schema.name)
        self._relations[relation.schema.name] = relation
        self._invalidate_stats(relation.schema.name)
        return relation

    def remove(self, name):
        """Remove and return the relation named ``name``."""
        try:
            relation = self._relations.pop(name)
        except KeyError:
            raise SchemaError("no relation named %r" % (name,)) from None
        self._invalidate_stats(name)
        return relation

    def insert(self, name, rows):
        """Extend relation ``name`` with ``rows``; returns the new binding.

        The *statistics-friendly* mutation path: the catalog (if one has
        been materialized) folds just the new rows into its census
        instead of rescanning the relation, so repeated inserts keep
        optimizer statistics current at cost proportional to the insert.
        """
        self._check_reserved(name)
        old = self[name]
        added = {tuple(row) for row in rows} - old.tuples
        if not added:
            return old
        relation = Relation(old.schema, old.tuples | added)
        self._relations[name] = relation
        if self._catalog is not None:
            self._catalog.observe_insert(name, relation, added)
        return relation

    def catalog(self):
        """The optimizer's :class:`~repro.opt.catalog.Catalog` for this
        database (created lazily, invalidated as bindings change)."""
        if self._catalog is None:
            from ..opt.catalog import Catalog

            self._catalog = Catalog(self)
        return self._catalog

    def _invalidate_stats(self, name):
        if self._catalog is not None:
            self._catalog.invalidate(name)

    # -- virtual (system) relations -----------------------------------------

    def register_virtual(self, schema, provider):
        """Register a ``sys_`` relation materialized on demand.

        Args:
            schema: the relation's :class:`RelationSchema`; its name
                must carry the reserved :data:`SYSTEM_PREFIX`.
            provider: zero-argument callable returning the table's raw
                tuples at lookup time.

        Re-registering a name replaces the provider (the most recent
        session owns the namespace).
        """
        if not isinstance(schema, RelationSchema):
            raise SchemaError("expected RelationSchema, got %r" % (schema,))
        if not is_system_name(schema.name):
            raise SchemaError(
                "virtual relations live in the 'sys_' namespace; got %r"
                % (schema.name,)
            )
        if self._virtual is None:
            self._virtual = {}
        self._virtual[schema.name] = (schema, provider)
        return schema

    def virtual_names(self):
        """Registered virtual relation names, sorted."""
        return sorted(self._virtual) if self._virtual is not None else []

    def __getitem__(self, name):
        try:
            return self._relations[name]
        except KeyError:
            if self._virtual is not None:
                entry = self._virtual.get(name)
                if entry is not None:
                    schema, provider = entry
                    return Relation(schema, provider())
            raise SchemaError(
                "no relation named %r in database (has: %s)"
                % (name, ", ".join(sorted(self._relations)) or "<empty>")
            ) from None

    def __contains__(self, name):
        return name in self._relations or (
            self._virtual is not None and name in self._virtual
        )

    def __iter__(self):
        return iter(self._relations)

    def __len__(self):
        return len(self._relations)

    def names(self):
        """Relation names, sorted."""
        return sorted(self._relations)

    def relations(self):
        """All relations, ordered by name."""
        return [self._relations[n] for n in self.names()]

    def schema(self, virtual=True):
        """The :class:`DatabaseSchema` of this instance.

        Includes registered virtual (``sys_``) relation schemas by
        default so compiled queries can reference them; pass
        ``virtual=False`` for the user-data-only view (schema
        hypergraphs, acyclicity analysis, full joins).
        """
        schema = DatabaseSchema(r.schema for r in self.relations())
        if virtual and self._virtual is not None:
            for name in sorted(self._virtual):
                schema.add(self._virtual[name][0])
        return schema

    def schema_token(self):
        """A hashable fingerprint of the schema (names and attributes).

        Caches keyed on compiled plans (e.g. the workbench's parse and
        plan caches) use this to detect that relations were added,
        removed, or re-shaped and their entries must be discarded.
        """
        return tuple(
            (name, self._relations[name].schema.attributes)
            for name in self.names()
        )

    def active_domain(self):
        """All values occurring anywhere in the database.

        This is the *active domain* of classical finite-model-theoretic
        semantics; the calculus evaluator quantifies over it.
        """
        values = set()
        for rel in self._relations.values():
            values |= rel.active_domain()
        return values

    def total_tuples(self):
        """Total tuple count across relations (a crude size measure)."""
        return sum(len(r) for r in self._relations.values())

    def copy(self):
        """Shallow copy (relations are immutable, so this is enough).

        Virtual providers are *not* carried over: they are bound to live
        session objects (tracers, caches, pools); a copy is plain data.
        """
        db = Database()
        db._relations = dict(self._relations)
        return db  # statistics are per-instance: the copy starts fresh

    def __eq__(self, other):
        return (
            isinstance(other, Database)
            and self._relations == other._relations
        )

    def __repr__(self):
        return "Database(%s)" % ", ".join(
            "%s/%d:%d" % (r.schema.name, r.schema.arity, len(r))
            for r in self.relations()
        )
