"""Database instances: named relations over a database schema."""

from __future__ import annotations

from ..errors import RelationError, SchemaError
from .relation import Relation
from .schema import DatabaseSchema, RelationSchema


class Database:
    """A mutable collection of named :class:`Relation` instances.

    The algebra/calculus evaluators and the Datalog engines all consume a
    ``Database``.  Relations are immutable; updating a relation replaces the
    binding.
    """

    __slots__ = ("_relations", "_catalog")

    def __init__(self, relations=()):
        self._relations = {}
        self._catalog = None
        for rel in relations:
            self.add(rel)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dict(cls, data):
        """Build a database from ``{name: (attributes, rows)}``.

        ``attributes`` is a sequence of names; ``rows`` an iterable of raw
        tuples.  Convenient for tests and examples::

            db = Database.from_dict({
                "parent": (("parent", "child"),
                           [("ann", "bob"), ("bob", "cal")]),
            })
        """
        db = cls()
        for name, (attributes, rows) in data.items():
            schema = RelationSchema(name, attributes)
            db.add(Relation(schema, rows))
        return db

    # -- access ----------------------------------------------------------------

    def add(self, relation):
        """Register a relation under its schema name; names must be unique."""
        if not isinstance(relation, Relation):
            raise RelationError("expected Relation, got %r" % (relation,))
        name = relation.schema.name
        if name in self._relations:
            raise SchemaError("duplicate relation name %r" % (name,))
        self._relations[name] = relation
        self._invalidate_stats(name)
        return relation

    def replace(self, relation):
        """Register or overwrite the relation named by its schema."""
        self._relations[relation.schema.name] = relation
        self._invalidate_stats(relation.schema.name)
        return relation

    def remove(self, name):
        """Remove and return the relation named ``name``."""
        try:
            relation = self._relations.pop(name)
        except KeyError:
            raise SchemaError("no relation named %r" % (name,)) from None
        self._invalidate_stats(name)
        return relation

    def insert(self, name, rows):
        """Extend relation ``name`` with ``rows``; returns the new binding.

        The *statistics-friendly* mutation path: the catalog (if one has
        been materialized) folds just the new rows into its census
        instead of rescanning the relation, so repeated inserts keep
        optimizer statistics current at cost proportional to the insert.
        """
        old = self[name]
        added = {tuple(row) for row in rows} - old.tuples
        if not added:
            return old
        relation = Relation(old.schema, old.tuples | added)
        self._relations[name] = relation
        if self._catalog is not None:
            self._catalog.observe_insert(name, relation, added)
        return relation

    def catalog(self):
        """The optimizer's :class:`~repro.opt.catalog.Catalog` for this
        database (created lazily, invalidated as bindings change)."""
        if self._catalog is None:
            from ..opt.catalog import Catalog

            self._catalog = Catalog(self)
        return self._catalog

    def _invalidate_stats(self, name):
        if self._catalog is not None:
            self._catalog.invalidate(name)

    def __getitem__(self, name):
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                "no relation named %r in database (has: %s)"
                % (name, ", ".join(sorted(self._relations)) or "<empty>")
            ) from None

    def __contains__(self, name):
        return name in self._relations

    def __iter__(self):
        return iter(self._relations)

    def __len__(self):
        return len(self._relations)

    def names(self):
        """Relation names, sorted."""
        return sorted(self._relations)

    def relations(self):
        """All relations, ordered by name."""
        return [self._relations[n] for n in self.names()]

    def schema(self):
        """The :class:`DatabaseSchema` of this instance."""
        return DatabaseSchema(r.schema for r in self.relations())

    def schema_token(self):
        """A hashable fingerprint of the schema (names and attributes).

        Caches keyed on compiled plans (e.g. the workbench's parse and
        plan caches) use this to detect that relations were added,
        removed, or re-shaped and their entries must be discarded.
        """
        return tuple(
            (name, self._relations[name].schema.attributes)
            for name in self.names()
        )

    def active_domain(self):
        """All values occurring anywhere in the database.

        This is the *active domain* of classical finite-model-theoretic
        semantics; the calculus evaluator quantifies over it.
        """
        values = set()
        for rel in self._relations.values():
            values |= rel.active_domain()
        return values

    def total_tuples(self):
        """Total tuple count across relations (a crude size measure)."""
        return sum(len(r) for r in self._relations.values())

    def copy(self):
        """Shallow copy (relations are immutable, so this is enough)."""
        db = Database()
        db._relations = dict(self._relations)
        return db  # statistics are per-instance: the copy starts fresh

    def __eq__(self, other):
        return (
            isinstance(other, Database)
            and self._relations == other._relations
        )

    def __repr__(self):
        return "Database(%s)" % ", ".join(
            "%s/%d:%d" % (r.schema.name, r.schema.arity, len(r))
            for r in self.relations()
        )
