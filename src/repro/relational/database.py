"""Database instances: named relations over a database schema.

Mutation is **versioned**: every change to the bindings map — ``add``,
``replace``, ``remove``, ``insert``, ``apply_delta``, a transaction
commit — routes through :meth:`Database._commit_change`, which builds a
*new* ``{name: Relation}`` dict (copy-on-write; unchanged relations are
shared by reference) and registers it with the database's
:class:`~repro.storage.mvcc.MVCCStore`.  The bindings dict is therefore
never mutated in place, which is what makes :meth:`snapshot` an O(1)
pinned reference and lets concurrent readers keep repeatable views while
writers commit.
"""

from __future__ import annotations

from ..errors import RelationError, SchemaError
from .relation import Relation
from .schema import DatabaseSchema, RelationSchema

#: Prefix of the reserved system-relation namespace (queryable runtime
#: introspection; see :mod:`repro.obs.introspect`).  User relations may
#: not use it: the system tables must never be shadowed by data.
SYSTEM_PREFIX = "sys_"


def is_system_name(name):
    """True for names inside the reserved ``sys_`` namespace."""
    return isinstance(name, str) and name.startswith(SYSTEM_PREFIX)


class Database:
    """A mutable collection of named :class:`Relation` instances.

    The algebra/calculus evaluators and the Datalog engines all consume a
    ``Database``.  Relations are immutable; updating a relation replaces the
    binding.

    A database may additionally carry **virtual relations**: reserved
    ``sys_``-named tables whose tuples are produced by a registered
    provider at lookup time (:meth:`register_virtual`).  Virtual
    relations resolve through ``db[name]`` and appear in :meth:`schema`
    (so every query front-end can reference them) but are deliberately
    excluded from :meth:`names`, iteration, :meth:`active_domain`, and
    :meth:`copy` — enumeration-style consumers (schema hypergraphs, full
    joins, Datalog EDB ingestion, workload generators) see user data
    only.
    """

    __slots__ = ("_relations", "_catalog", "_virtual", "_store")

    def __init__(self, relations=()):
        self._relations = {}
        self._catalog = None
        self._virtual = None
        self._store = None
        for rel in relations:
            self.add(rel)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dict(cls, data):
        """Build a database from ``{name: (attributes, rows)}``.

        ``attributes`` is a sequence of names; ``rows`` an iterable of raw
        tuples.  Convenient for tests and examples::

            db = Database.from_dict({
                "parent": (("parent", "child"),
                           [("ann", "bob"), ("bob", "cal")]),
            })
        """
        db = cls()
        for name, (attributes, rows) in data.items():
            schema = RelationSchema(name, attributes)
            db.add(Relation(schema, rows))
        return db

    # -- access ----------------------------------------------------------------

    def _check_reserved(self, name):
        if is_system_name(name):
            raise SchemaError(
                "relation name %r is in the reserved 'sys_' namespace "
                "(read-only system relations; see repro.obs.introspect)"
                % (name,)
            )

    def store(self):
        """The database's :class:`~repro.storage.mvcc.MVCCStore`.

        Created lazily (a read-only database pays nothing); every
        committed mutation registers its new bindings here.
        """
        if self._store is None:
            from ..storage.mvcc import MVCCStore

            self._store = MVCCStore()
        return self._store

    def _commit_change(self, changes, removed=(), kind="replace",
                       txn=None, counts=None, journal=True):
        """The one mutation gate: commit new bindings copy-on-write.

        Builds a fresh bindings dict (sharing every unchanged Relation),
        swaps it in, bumps the store's version counters, and journals
        one entry per changed name with its undo image.  Returns the new
        version id.

        Args:
            changes: ``{name: Relation}`` of new/updated bindings.
            removed: names dropped from the map.
            kind: the journal entry kind.
            txn: owning transaction id (None for autocommit).
            counts: optional ``{name: (inserted, deleted)}`` tuple-count
                deltas for the journal (0/0 for pure rebinds).
            journal: pass False when the caller manages journal entries
                itself (transaction commits flip their staged entries).
        """
        from ..storage.journal import ABSENT

        store = self.store()
        bindings = dict(self._relations)
        undo = {}
        for name in removed:
            undo[name] = bindings.pop(name, ABSENT)
        for name, relation in changes.items():
            undo[name] = self._relations.get(name, ABSENT)
            bindings[name] = relation
        self._relations = bindings
        changed = list(changes) + [n for n in removed if n not in changes]
        vid = store.commit(bindings, changed)
        if journal:
            for name in changed:
                inserted, deleted = (counts or {}).get(name, (0, 0))
                store.journal.append(
                    vid, txn, kind, name, inserted=inserted,
                    deleted=deleted, undo=undo[name],
                )
        return vid

    def add(self, relation, system=False):
        """Register a relation under its schema name; names must be unique.

        ``system=True`` is the internal escape hatch for scratch
        databases that legitimately materialize ``sys_`` snapshots
        (Datalog lowering); user code must not pass it.
        """
        if not isinstance(relation, Relation):
            raise RelationError("expected Relation, got %r" % (relation,))
        name = relation.schema.name
        if not system:
            self._check_reserved(name)
        if name in self._relations:
            raise SchemaError("duplicate relation name %r" % (name,))
        self._commit_change(
            {name: relation}, kind="add",
            counts={name: (len(relation), 0)},
        )
        self._invalidate_stats(name)
        return relation

    def replace(self, relation, system=False):
        """Register or overwrite the relation named by its schema."""
        if not system:
            self._check_reserved(relation.schema.name)
        self._commit_change({relation.schema.name: relation}, kind="replace")
        self._invalidate_stats(relation.schema.name)
        return relation

    def remove(self, name):
        """Remove and return the relation named ``name``."""
        if name not in self._relations:
            raise SchemaError("no relation named %r" % (name,))
        relation = self._relations[name]
        self._commit_change(
            {}, removed=(name,), kind="remove",
            counts={name: (0, len(relation))},
        )
        self._invalidate_stats(name)
        return relation

    def insert(self, name, rows):
        """Extend relation ``name`` with ``rows``; returns the new binding.

        The *statistics-friendly* mutation path: the catalog (if one has
        been materialized) folds just the new rows into its census
        instead of rescanning the relation, so repeated inserts keep
        optimizer statistics current at cost proportional to the insert.
        """
        relation, _added, _removed = self.apply_delta(
            name, insert_rows=rows, kind="insert"
        )
        return relation

    def apply_delta(self, name, insert_rows=(), delete_rows=(),
                    kind=None, txn=None):
        """Apply a tuple-level delta to relation ``name``.

        Deletes apply first, then inserts (so an UPDATE's matched rows
        can reappear transformed — or unchanged, as a no-op).  The
        catalog census is maintained **incrementally** on both paths:
        cost proportional to the delta, never a rescan.

        Returns:
            ``(relation, added, removed)`` — the new binding plus the
            tuples actually added and actually removed (both may be
            empty; the binding is unchanged then).
        """
        self._check_reserved(name)
        if name not in self._relations:
            raise SchemaError("no relation named %r" % (name,))
        old = self._relations[name]
        insert_set = {tuple(row) for row in insert_rows}
        delete_set = {tuple(row) for row in delete_rows}
        final = (old.tuples - delete_set) | insert_set
        added = final - old.tuples
        removed = old.tuples - final
        if not added and not removed:
            return old, added, removed
        relation = Relation(old.schema, final)
        if kind is None:
            kind = "delete" if not insert_set else (
                "insert" if not delete_set else "update"
            )
        self._commit_change(
            {name: relation}, kind=kind, txn=txn,
            counts={name: (len(added), len(removed))},
        )
        if self._catalog is not None:
            if added:
                self._catalog.observe_insert(name, relation, added)
            if removed:
                self._catalog.observe_delete(name, relation, removed)
        return relation, added, removed

    def apply_overlay(self, bindings, txn=None, journal=True):
        """Commit a transaction's staged bindings atomically.

        One version id covers the whole write set; per-name tuple deltas
        are computed against the current committed bindings (the
        concurrency control guarantees those equal the bindings the
        overlay was staged against) and folded into the catalog
        incrementally.  Returns the commit version id.
        """
        changes = {}
        counts = {}
        catalog_deltas = []
        for name, relation in bindings.items():
            old = self._relations.get(name)
            if old is relation:
                continue
            old_tuples = old.tuples if old is not None else frozenset()
            added = relation.tuples - old_tuples
            removed = old_tuples - relation.tuples
            changes[name] = relation
            counts[name] = (len(added), len(removed))
            catalog_deltas.append((name, relation, added, removed))
        if not changes:
            return self.store().vid
        vid = self._commit_change(
            changes, kind="update", txn=txn, counts=counts,
            journal=journal,
        )
        if self._catalog is not None:
            for name, relation, added, removed in catalog_deltas:
                if added:
                    self._catalog.observe_insert(name, relation, added)
                if removed:
                    self._catalog.observe_delete(name, relation, removed)
        return vid

    def overlay_view(self, overlay):
        """A read view: committed bindings shadowed by ``overlay``.

        The dict copy is O(names) of binding *references* (relations are
        shared); virtual providers are carried so ``sys_`` relations
        still resolve inside transactions.
        """
        view = Database()
        view._relations = (
            {**self._relations, **overlay} if overlay
            else self._relations
        )
        if self._virtual is not None:
            # A copy, not the reference: a session installed on the view
            # (install_introspection re-registers providers) must not
            # hijack this database's sys_ namespace.
            view._virtual = dict(self._virtual)
        return view

    def snapshot(self):
        """Pin the current version: an O(1) repeatable-read view.

        Returns a :class:`~repro.storage.mvcc.Snapshot` whose ``db``
        shares this database's bindings dict by reference — safe because
        commits swap in fresh dicts (copy-on-write) and never mutate the
        shared one.  Queries against the snapshot see this exact state
        regardless of later commits; mutating the snapshot's database
        forks it.
        """
        from ..storage.mvcc import Snapshot

        view = Database()
        view._relations = self._relations
        if self._virtual is not None:
            view._virtual = dict(self._virtual)
        return Snapshot(self.store().vid, view)

    def catalog(self):
        """The optimizer's :class:`~repro.opt.catalog.Catalog` for this
        database (created lazily, invalidated as bindings change)."""
        if self._catalog is None:
            from ..opt.catalog import Catalog

            self._catalog = Catalog(self)
        return self._catalog

    def _invalidate_stats(self, name):
        if self._catalog is not None:
            self._catalog.invalidate(name)

    # -- virtual (system) relations -----------------------------------------

    def register_virtual(self, schema, provider):
        """Register a ``sys_`` relation materialized on demand.

        Args:
            schema: the relation's :class:`RelationSchema`; its name
                must carry the reserved :data:`SYSTEM_PREFIX`.
            provider: zero-argument callable returning the table's raw
                tuples at lookup time.

        Re-registering a name replaces the provider (the most recent
        session owns the namespace).
        """
        if not isinstance(schema, RelationSchema):
            raise SchemaError("expected RelationSchema, got %r" % (schema,))
        if not is_system_name(schema.name):
            raise SchemaError(
                "virtual relations live in the 'sys_' namespace; got %r"
                % (schema.name,)
            )
        if self._virtual is None:
            self._virtual = {}
        self._virtual[schema.name] = (schema, provider)
        return schema

    def virtual_names(self):
        """Registered virtual relation names, sorted."""
        return sorted(self._virtual) if self._virtual is not None else []

    def __getitem__(self, name):
        try:
            return self._relations[name]
        except KeyError:
            if self._virtual is not None:
                entry = self._virtual.get(name)
                if entry is not None:
                    schema, provider = entry
                    return Relation(schema, provider())
            raise SchemaError(
                "no relation named %r in database (has: %s)"
                % (name, ", ".join(sorted(self._relations)) or "<empty>")
            ) from None

    def __contains__(self, name):
        return name in self._relations or (
            self._virtual is not None and name in self._virtual
        )

    def __iter__(self):
        return iter(self._relations)

    def __len__(self):
        return len(self._relations)

    def names(self):
        """Relation names, sorted."""
        return sorted(self._relations)

    def relations(self):
        """All relations, ordered by name."""
        return [self._relations[n] for n in self.names()]

    def schema(self, virtual=True):
        """The :class:`DatabaseSchema` of this instance.

        Includes registered virtual (``sys_``) relation schemas by
        default so compiled queries can reference them; pass
        ``virtual=False`` for the user-data-only view (schema
        hypergraphs, acyclicity analysis, full joins).
        """
        schema = DatabaseSchema(r.schema for r in self.relations())
        if virtual and self._virtual is not None:
            for name in sorted(self._virtual):
                schema.add(self._virtual[name][0])
        return schema

    def schema_token(self):
        """A hashable fingerprint of the schema (names and attributes).

        Caches keyed on compiled plans (e.g. the workbench's parse and
        plan caches) use this to detect that relations were added,
        removed, or re-shaped and their entries must be discarded.
        """
        return tuple(
            (name, self._relations[name].schema.attributes)
            for name in self.names()
        )

    def version_id(self):
        """The store's global version id (0 for a never-mutated copy).

        One integer compare tells a cache whether *anything* changed
        since it last looked; :meth:`relation_state` then names what.
        """
        return self._store.vid if self._store is not None else 0

    def relation_state(self):
        """``{name: (version, attributes)}`` — the surgical-invalidation
        token.  A cache diffs two of these to find exactly which
        relations were rebound (version bump) or re-shaped (attribute
        change) and drops only the entries referencing them.
        """
        store = self._store
        return {
            name: (
                store.version_of(name) if store is not None else 0,
                relation.schema.attributes,
            )
            for name, relation in self._relations.items()
        }

    def active_domain(self):
        """All values occurring anywhere in the database.

        This is the *active domain* of classical finite-model-theoretic
        semantics; the calculus evaluator quantifies over it.
        """
        values = set()
        for rel in self._relations.values():
            values |= rel.active_domain()
        return values

    def total_tuples(self):
        """Total tuple count across relations (a crude size measure)."""
        return sum(len(r) for r in self._relations.values())

    def copy(self):
        """Shallow copy (relations are immutable, so this is enough).

        Copy-on-write makes even the bindings dict shareable: the copy
        holds the same dict until its first mutation swaps in a fresh
        one.  Virtual providers are *not* carried over: they are bound
        to live session objects (tracers, caches, pools); a copy is
        plain data.
        """
        db = Database()
        db._relations = self._relations
        return db  # statistics and versions are per-instance: fresh start

    def __eq__(self, other):
        return (
            isinstance(other, Database)
            and self._relations == other._relations
        )

    def __repr__(self):
        return "Database(%s)" % ", ".join(
            "%s/%d:%d" % (r.schema.name, r.schema.arity, len(r))
            for r in self.relations()
        )
