"""Concrete syntax for domain relational calculus queries.

Grammar (quantifiers bind tightest-to-the-right, standard precedence
``not > and > or > implies``)::

    query    := "{" "(" var ("," var)* ")" "|" formula "}"
              | "{" "(" ")" "|" formula "}"              (boolean query)
    formula  := implication
    implication := disjunction ("->" implication)?
    disjunction := conjunction ("or" conjunction)*
    conjunction := negation ("and" negation)*
    negation := "not" negation | quantified
    quantified := ("exists" | "forall") var ("," var)* "." negation
              | "(" formula ")" | atom | comparison
    atom     := name "(" term ("," term)* ")"
    term     := var | number | "'" chars "'"
    comparison := term op term      op in  = != < <= > >=

Variables are lowercase identifiers not followed by ``(``; relation
names are identifiers followed by ``(``; string constants use single
quotes.  Example::

    parse_calculus("{(x) | person(x) and not exists y . parent(x, y)}")
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .calculus import (
    AndF,
    Compare,
    Cst,
    Exists,
    Forall,
    Implies,
    NotF,
    OrF,
    Query,
    RelAtom,
    Var,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<string>'(?:[^']|'')*')
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<op><=|>=|!=|->|=|<|>|\{|\}|\(|\)|,|\.|\|)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<space>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall", "and", "or", "not", "implies"}


def _tokenize(text):
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind == "space":
            continue
        if kind == "bad":
            raise ParseError(
                "unexpected character %r" % match.group(),
                position=match.start(),
                text=text,
            )
        value = match.group()
        if kind == "number":
            value = float(value) if "." in value else int(value)
        elif kind == "string":
            value = value[1:-1].replace("''", "'")
        elif kind == "name" and value in _KEYWORDS:
            kind = "keyword"
        tokens.append((kind, value, match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens, text):
        self.tokens = tokens
        self.text = text
        self.index = 0

    def peek(self, ahead=0):
        position = self.index + ahead
        return self.tokens[position] if position < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query", text=self.text)
        self.index += 1
        return token

    def expect(self, kind, value=None):
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ParseError(
                "expected %s%s, got %r"
                % (kind, " %r" % value if value else "", token[1]),
                position=token[2],
                text=self.text,
            )
        return token

    def accept(self, kind, value=None):
        token = self.peek()
        if token and token[0] == kind and (value is None or token[1] == value):
            self.index += 1
            return token
        return None

    # -- grammar -------------------------------------------------------

    def parse_query(self):
        self.expect("op", "{")
        self.expect("op", "(")
        head = []
        if not self.accept("op", ")"):
            head.append(self.expect("name")[1])
            while self.accept("op", ","):
                head.append(self.expect("name")[1])
            self.expect("op", ")")
        self.expect("op", "|")
        formula = self.parse_formula()
        self.expect("op", "}")
        if self.peek() is not None:
            raise ParseError(
                "trailing input after query", position=self.peek()[2],
                text=self.text,
            )
        return Query(head, formula)

    def parse_formula(self):
        return self.parse_implication()

    def parse_implication(self):
        left = self.parse_disjunction()
        if self.accept("op", "->") or self.accept("keyword", "implies"):
            return Implies(left, self.parse_implication())
        return left

    def parse_disjunction(self):
        parts = [self.parse_conjunction()]
        while self.accept("keyword", "or"):
            parts.append(self.parse_conjunction())
        return OrF(*parts) if len(parts) > 1 else parts[0]

    def parse_conjunction(self):
        parts = [self.parse_negation()]
        while self.accept("keyword", "and"):
            parts.append(self.parse_negation())
        return AndF(*parts) if len(parts) > 1 else parts[0]

    def parse_negation(self):
        if self.accept("keyword", "not"):
            return NotF(self.parse_negation())
        return self.parse_quantified()

    def parse_quantified(self):
        quantifier = self.accept("keyword", "exists") or self.accept(
            "keyword", "forall"
        )
        if quantifier:
            variables = [self.expect("name")[1]]
            while self.accept("op", ","):
                variables.append(self.expect("name")[1])
            self.expect("op", ".")
            body = self.parse_negation()
            cls = Exists if quantifier[1] == "exists" else Forall
            return cls(variables, body)
        if self.accept("op", "("):
            inner = self.parse_formula()
            self.expect("op", ")")
            return inner
        return self.parse_atom_or_comparison()

    def parse_atom_or_comparison(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of formula", text=self.text)
        after = self.peek(1)
        if (
            token[0] == "name"
            and after is not None
            and after[0] == "op"
            and after[1] == "("
        ):
            relation = self.next()[1]
            self.expect("op", "(")
            terms = [self.parse_term()]
            while self.accept("op", ","):
                terms.append(self.parse_term())
            self.expect("op", ")")
            return RelAtom(relation, terms)
        left = self.parse_term()
        op_token = self.next()
        if op_token[0] != "op" or op_token[1] not in (
            "=", "!=", "<", "<=", ">", ">=",
        ):
            raise ParseError(
                "expected a comparison operator, got %r" % (op_token[1],),
                position=op_token[2],
                text=self.text,
            )
        right = self.parse_term()
        return Compare(left, op_token[1], right)

    def parse_term(self):
        token = self.next()
        kind, value, position = token
        if kind in ("number", "string"):
            return Cst(value)
        if kind == "name":
            return Var(value)
        raise ParseError(
            "expected a term, got %r" % (value,), position=position,
            text=self.text,
        )


def parse_calculus(text):
    """Parse a domain-calculus query from text.

    Returns:
        A :class:`~repro.relational.calculus.Query`.

    Raises:
        ParseError: on syntax errors.
        CalculusError: if the head does not match the free variables.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty calculus query", text=text)
    return _Parser(tokens, text).parse_query()


def parse_formula(text):
    """Parse a bare formula (no ``{...|...}`` wrapper)."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty formula", text=text)
    parser = _Parser(tokens, text)
    formula = parser.parse_formula()
    if parser.peek() is not None:
        raise ParseError(
            "trailing input after formula", position=parser.peek()[2],
            text=text,
        )
    return formula
