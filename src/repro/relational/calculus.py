"""Domain relational calculus: formulas, safety, and reference evaluation.

This is the "calculus" side of Codd's Theorem.  A query is
``{(x1,...,xk) | phi(x1,...,xk)}`` where ``phi`` is a first-order formula
over relation atoms, (in)equality and order comparisons, the boolean
connectives, and quantifiers.

Two semantics matter in the classical theory:

* **Active-domain semantics** — quantifiers range over the set of values
  occurring in the database or the query.  :func:`evaluate_query` implements
  this directly by recursive enumeration; it is the *reference oracle*
  against which the algebra translation (``relational.codd``) is tested.
* **Domain independence** — a query whose answer does not depend on the
  underlying domain.  Undecidable in general, so the classical theory uses
  the syntactic *safe-range* condition (:func:`is_safe_range`,
  :func:`range_restricted_variables`), which guarantees domain independence
  and is exactly the class translated to algebra by Codd's Theorem.

The formula AST is immutable.  Universal quantifiers and implications are
supported as syntax and normalized away (``forall x phi == not exists x not
phi``) before safety analysis and translation.
"""

from __future__ import annotations

import itertools

from ..errors import CalculusError

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class for calculus terms (variables and constants)."""

    __slots__ = ()


class Var(Term):
    """A first-order variable, identified by name."""

    __slots__ = ("name",)

    def __init__(self, name):
        if not isinstance(name, str) or not name:
            raise CalculusError("variable names must be non-empty strings")
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return hash(("Var", self.name))

    def __repr__(self):
        return "Var(%r)" % self.name

    def __str__(self):
        return self.name


class Cst(Term):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Cst) and other.value == self.value

    def __hash__(self):
        return hash(("Cst", self.value))

    def __repr__(self):
        return "Cst(%r)" % (self.value,)

    def __str__(self):
        return repr(self.value)


def term(value):
    """Coerce: strings become variables, everything else constants.

    Use :class:`Cst` explicitly for string constants.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Var(value)
    return Cst(value)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class for calculus formulas."""

    __slots__ = ()

    def free_variables(self):
        """Set of free variable *names*."""
        raise NotImplementedError

    def __and__(self, other):
        return AndF(self, other)

    def __or__(self, other):
        return OrF(self, other)

    def __invert__(self):
        return NotF(self)


class RelAtom(Formula):
    """Relation atom ``R(t1, ..., tn)``."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation, terms):
        self.relation = relation
        self.terms = tuple(term(t) for t in terms)

    def free_variables(self):
        return {t.name for t in self.terms if isinstance(t, Var)}

    def __repr__(self):
        return "RelAtom(%r, %r)" % (self.relation, list(self.terms))

    def __str__(self):
        return "%s(%s)" % (self.relation, ", ".join(map(str, self.terms)))


class Compare(Formula):
    """Comparison atom ``t1 op t2`` with op in =, !=, <, <=, >, >=."""

    __slots__ = ("left", "op", "right")

    _OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __init__(self, left, op, right):
        if op not in self._OPS:
            raise CalculusError(
                "unknown comparison %r (use one of %s)" % (op, ", ".join(self._OPS))
            )
        self.left = term(left)
        self.op = op
        self.right = term(right)

    def free_variables(self):
        return {
            t.name for t in (self.left, self.right) if isinstance(t, Var)
        }

    def __repr__(self):
        return "Compare(%r, %r, %r)" % (self.left, self.op, self.right)

    def __str__(self):
        return "%s %s %s" % (self.left, self.op, self.right)


class AndF(Formula):
    """Conjunction (n-ary, flattened)."""

    __slots__ = ("parts",)

    def __init__(self, *parts):
        if not parts:
            raise CalculusError("AndF needs at least one conjunct")
        flat = []
        for p in parts:
            flat.extend(p.parts if isinstance(p, AndF) else [p])
        self.parts = tuple(flat)

    def free_variables(self):
        out = set()
        for p in self.parts:
            out |= p.free_variables()
        return out

    def __repr__(self):
        return "AndF(%s)" % ", ".join(map(repr, self.parts))

    def __str__(self):
        return " & ".join("(%s)" % p for p in self.parts)


class OrF(Formula):
    """Disjunction (n-ary, flattened)."""

    __slots__ = ("parts",)

    def __init__(self, *parts):
        if not parts:
            raise CalculusError("OrF needs at least one disjunct")
        flat = []
        for p in parts:
            flat.extend(p.parts if isinstance(p, OrF) else [p])
        self.parts = tuple(flat)

    def free_variables(self):
        out = set()
        for p in self.parts:
            out |= p.free_variables()
        return out

    def __repr__(self):
        return "OrF(%s)" % ", ".join(map(repr, self.parts))

    def __str__(self):
        return " | ".join("(%s)" % p for p in self.parts)


class NotF(Formula):
    """Negation."""

    __slots__ = ("part",)

    def __init__(self, part):
        self.part = part

    def free_variables(self):
        return self.part.free_variables()

    def __repr__(self):
        return "NotF(%r)" % (self.part,)

    def __str__(self):
        return "~(%s)" % self.part


class Exists(Formula):
    """Existential quantification over one or more variables."""

    __slots__ = ("variables", "part")

    def __init__(self, variables, part):
        if isinstance(variables, str):
            variables = (variables,)
        self.variables = tuple(
            v.name if isinstance(v, Var) else v for v in variables
        )
        if not self.variables:
            raise CalculusError("Exists needs at least one variable")
        self.part = part

    def free_variables(self):
        return self.part.free_variables() - set(self.variables)

    def __repr__(self):
        return "Exists(%r, %r)" % (list(self.variables), self.part)

    def __str__(self):
        return "exists %s. (%s)" % (",".join(self.variables), self.part)


class Forall(Formula):
    """Universal quantification (normalized to ``~exists ~`` internally)."""

    __slots__ = ("variables", "part")

    def __init__(self, variables, part):
        if isinstance(variables, str):
            variables = (variables,)
        self.variables = tuple(
            v.name if isinstance(v, Var) else v for v in variables
        )
        if not self.variables:
            raise CalculusError("Forall needs at least one variable")
        self.part = part

    def free_variables(self):
        return self.part.free_variables() - set(self.variables)

    def __repr__(self):
        return "Forall(%r, %r)" % (list(self.variables), self.part)

    def __str__(self):
        return "forall %s. (%s)" % (",".join(self.variables), self.part)


class Implies(Formula):
    """Implication (normalized to ``~a | b`` internally)."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent, consequent):
        self.antecedent = antecedent
        self.consequent = consequent

    def free_variables(self):
        return (
            self.antecedent.free_variables()
            | self.consequent.free_variables()
        )

    def __repr__(self):
        return "Implies(%r, %r)" % (self.antecedent, self.consequent)

    def __str__(self):
        return "(%s) -> (%s)" % (self.antecedent, self.consequent)


class Query:
    """A calculus query ``{ head | formula }``.

    Args:
        head: ordered free variables forming the output tuple; also the
            output attribute names.  May be empty (a boolean query, whose
            answer is the 0-ary relation {()} for "yes" and {} for "no").
        formula: the defining formula; its free variables must be exactly
            the head variables.
    """

    __slots__ = ("head", "formula")

    def __init__(self, head, formula):
        self.head = tuple(v.name if isinstance(v, Var) else v for v in head)
        if len(set(self.head)) != len(self.head):
            raise CalculusError("duplicate head variables: %r" % (self.head,))
        free = formula.free_variables()
        if free != set(self.head):
            raise CalculusError(
                "head variables %r must equal the formula's free variables %r"
                % (sorted(self.head), sorted(free))
            )
        self.formula = formula

    def __repr__(self):
        return "Query(%r, %r)" % (list(self.head), self.formula)

    def __str__(self):
        return "{(%s) | %s}" % (", ".join(self.head), self.formula)


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def eliminate_sugar(formula):
    """Remove ``Forall`` and ``Implies``: the core calculus has neither.

    ``forall x. phi`` becomes ``~exists x. ~phi``; ``a -> b`` becomes
    ``~a | b``.  Purely structural; no renaming.
    """
    if isinstance(formula, (RelAtom, Compare)):
        return formula
    if isinstance(formula, AndF):
        return AndF(*[eliminate_sugar(p) for p in formula.parts])
    if isinstance(formula, OrF):
        return OrF(*[eliminate_sugar(p) for p in formula.parts])
    if isinstance(formula, NotF):
        return NotF(eliminate_sugar(formula.part))
    if isinstance(formula, Exists):
        return Exists(formula.variables, eliminate_sugar(formula.part))
    if isinstance(formula, Forall):
        return NotF(
            Exists(formula.variables, NotF(eliminate_sugar(formula.part)))
        )
    if isinstance(formula, Implies):
        return OrF(
            NotF(eliminate_sugar(formula.antecedent)),
            eliminate_sugar(formula.consequent),
        )
    raise CalculusError("unknown formula %r" % (formula,))


def push_negations(formula):
    """Push negations inward (after :func:`eliminate_sugar`).

    Double negations cancel; De Morgan distributes over and/or.  Negation
    ends up only on atoms and existential subformulas — the shape the
    safe-range analysis and the RANF translation expect.
    """
    if isinstance(formula, (RelAtom, Compare)):
        return formula
    if isinstance(formula, AndF):
        return AndF(*[push_negations(p) for p in formula.parts])
    if isinstance(formula, OrF):
        return OrF(*[push_negations(p) for p in formula.parts])
    if isinstance(formula, Exists):
        return Exists(formula.variables, push_negations(formula.part))
    if isinstance(formula, NotF):
        inner = formula.part
        if isinstance(inner, NotF):
            return push_negations(inner.part)
        if isinstance(inner, AndF):
            return OrF(*[push_negations(NotF(p)) for p in inner.parts])
        if isinstance(inner, OrF):
            return AndF(*[push_negations(NotF(p)) for p in inner.parts])
        if isinstance(inner, Compare):
            return Compare(inner.left, _NEGATED_OP[inner.op], inner.right)
        return NotF(push_negations(inner))
    raise CalculusError("unknown formula %r" % (formula,))


_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

_rename_counter = itertools.count()


def rename_apart(formula, taken=None):
    """Rename bound variables so no name is bound twice or bound-and-free.

    This is the variable hygiene step of SRNF conversion; translation to
    algebra assumes it.
    """
    taken = set(taken or ()) | formula.free_variables()

    def fresh(name):
        candidate = name
        while candidate in taken:
            candidate = "%s_%d" % (name, next(_rename_counter))
        taken.add(candidate)
        return candidate

    def walk(f, subst):
        if isinstance(f, RelAtom):
            return RelAtom(
                f.relation,
                [
                    Var(subst.get(t.name, t.name)) if isinstance(t, Var) else t
                    for t in f.terms
                ],
            )
        if isinstance(f, Compare):
            def sub(t):
                if isinstance(t, Var):
                    return Var(subst.get(t.name, t.name))
                return t

            return Compare(sub(f.left), f.op, sub(f.right))
        if isinstance(f, AndF):
            return AndF(*[walk(p, subst) for p in f.parts])
        if isinstance(f, OrF):
            return OrF(*[walk(p, subst) for p in f.parts])
        if isinstance(f, NotF):
            return NotF(walk(f.part, subst))
        if isinstance(f, Exists):
            new_subst = dict(subst)
            new_vars = []
            for v in f.variables:
                nv = fresh(v)
                new_subst[v] = nv
                new_vars.append(nv)
            return Exists(new_vars, walk(f.part, new_subst))
        raise CalculusError(
            "rename_apart expects a sugar-free formula, got %r" % (f,)
        )

    return walk(eliminate_sugar(formula), {})


def to_srnf(formula):
    """Full safe-range normal form pipeline: desugar, rename, push negations."""
    return push_negations(rename_apart(eliminate_sugar(formula)))


# ---------------------------------------------------------------------------
# Safe-range analysis
# ---------------------------------------------------------------------------


def range_restricted_variables(formula):
    """The set rr(phi) of range-restricted variables, or None if ill-ranged.

    Follows the classical definition (Abiteboul–Hull–Vianu Alg. 5.4.2) on a
    formula already in SRNF.  ``None`` propagates an inner quantification
    over a non-restricted variable (the formula cannot be safe-range).
    """
    if isinstance(formula, RelAtom):
        return formula.free_variables()
    if isinstance(formula, Compare):
        left, right = formula.left, formula.right
        if formula.op == "=":
            if isinstance(left, Var) and isinstance(right, Cst):
                return {left.name}
            if isinstance(right, Var) and isinstance(left, Cst):
                return {right.name}
        return set()
    if isinstance(formula, AndF):
        restricted = set()
        for p in formula.parts:
            rr = range_restricted_variables(p)
            if rr is None:
                return None
            restricted |= rr
        # Equality propagation: x=y makes both restricted if either is.
        changed = True
        while changed:
            changed = False
            for p in formula.parts:
                if (
                    isinstance(p, Compare)
                    and p.op == "="
                    and isinstance(p.left, Var)
                    and isinstance(p.right, Var)
                ):
                    a, b = p.left.name, p.right.name
                    if (a in restricted) != (b in restricted):
                        restricted |= {a, b}
                        changed = True
        return restricted
    if isinstance(formula, OrF):
        restricted = None
        for p in formula.parts:
            rr = range_restricted_variables(p)
            if rr is None:
                return None
            restricted = rr if restricted is None else restricted & rr
        return restricted
    if isinstance(formula, NotF):
        rr = range_restricted_variables(formula.part)
        if rr is None:
            return None
        return set()
    if isinstance(formula, Exists):
        rr = range_restricted_variables(formula.part)
        if rr is None or not set(formula.variables) <= rr:
            return None
        return rr - set(formula.variables)
    raise CalculusError("rr() expects an SRNF formula, got %r" % (formula,))


def is_safe_range(formula):
    """True when the formula is safe-range (hence domain independent)."""
    srnf = to_srnf(formula)
    rr = range_restricted_variables(srnf)
    return rr is not None and rr == srnf.free_variables()


def constants_of(formula):
    """All constant values mentioned anywhere in the formula."""
    if isinstance(formula, RelAtom):
        return {t.value for t in formula.terms if isinstance(t, Cst)}
    if isinstance(formula, Compare):
        return {
            t.value
            for t in (formula.left, formula.right)
            if isinstance(t, Cst)
        }
    if isinstance(formula, (AndF, OrF)):
        out = set()
        for p in formula.parts:
            out |= constants_of(p)
        return out
    if isinstance(formula, NotF):
        return constants_of(formula.part)
    if isinstance(formula, (Exists, Forall)):
        return constants_of(formula.part)
    if isinstance(formula, Implies):
        return constants_of(formula.antecedent) | constants_of(
            formula.consequent
        )
    raise CalculusError("unknown formula %r" % (formula,))


# ---------------------------------------------------------------------------
# Reference evaluation (active-domain semantics)
# ---------------------------------------------------------------------------


def _compare_values(left, op, right):
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise CalculusError("unknown comparison operator %r" % (op,))


def satisfies(formula, assignment, db, domain):
    """Does ``assignment`` (a name->value dict) satisfy the formula?

    Quantifiers range over ``domain``.  The formula may use all the sugar
    (``Forall``, ``Implies``).
    """
    if isinstance(formula, RelAtom):
        rel = db[formula.relation]
        values = []
        for t in formula.terms:
            if isinstance(t, Cst):
                values.append(t.value)
            else:
                try:
                    values.append(assignment[t.name])
                except KeyError:
                    raise CalculusError(
                        "unbound variable %r in atom %s" % (t.name, formula)
                    ) from None
        return tuple(values) in rel.tuples
    if isinstance(formula, Compare):
        def val(t):
            return t.value if isinstance(t, Cst) else assignment[t.name]

        return _compare_values(val(formula.left), formula.op, val(formula.right))
    if isinstance(formula, AndF):
        return all(satisfies(p, assignment, db, domain) for p in formula.parts)
    if isinstance(formula, OrF):
        return any(satisfies(p, assignment, db, domain) for p in formula.parts)
    if isinstance(formula, NotF):
        return not satisfies(formula.part, assignment, db, domain)
    if isinstance(formula, Implies):
        return not satisfies(
            formula.antecedent, assignment, db, domain
        ) or satisfies(formula.consequent, assignment, db, domain)
    if isinstance(formula, Exists):
        return _quantify(formula, assignment, db, domain, any)
    if isinstance(formula, Forall):
        return _quantify(formula, assignment, db, domain, all)
    raise CalculusError("unknown formula %r" % (formula,))


def _quantify(formula, assignment, db, domain, mode):
    names = formula.variables
    for values in itertools.product(sorted(domain, key=_dom_key), repeat=len(names)):
        extended = dict(assignment)
        extended.update(zip(names, values))
        result = satisfies(formula.part, extended, db, domain)
        if mode is any and result:
            return True
        if mode is all and not result:
            return False
    return mode is all


def _dom_key(value):
    return (type(value).__name__, repr(value))


def evaluate_query(query, db, domain=None):
    """Evaluate a calculus query under active-domain semantics.

    Args:
        query: a :class:`Query`.
        db: the database.
        domain: quantification domain; defaults to the active domain of the
            database plus the query's constants (the classical convention).

    Returns:
        A :class:`~repro.relational.relation.Relation` whose attributes are
        the head variable names.

    This is deliberately the naive ``|adom|^k`` enumeration: it is the
    semantics, used as the oracle for testing the Codd translation, not an
    efficient evaluator.
    """
    from .relation import Relation
    from .schema import RelationSchema

    if domain is None:
        domain = db.active_domain() | constants_of(query.formula)
    schema = RelationSchema("query", query.head)
    ordered = sorted(domain, key=_dom_key)
    answers = []
    for values in itertools.product(ordered, repeat=len(query.head)):
        assignment = dict(zip(query.head, values))
        if satisfies(query.formula, assignment, db, domain):
            answers.append(values)
    return Relation(schema, answers, validate=False)
