"""Relational algebra: expression AST, type checking, and evaluation.

This is the "algebra" side of Codd's Theorem — the paper's example of a
"solidly positive" result whose double implication is that *the calculus is
implementable and the algebra expressive*.  The six classical operators are
here (selection, projection, rename, product, union, difference), plus the
standard derived ones (natural/theta join, intersection, semijoin, antijoin,
division) so that translations and optimizers can target them directly.

Expressions are immutable trees.  ``expr.schema(db_schema)`` type-checks an
expression and returns its output schema; :func:`evaluate` runs it against a
:class:`~repro.relational.database.Database`.

Selection conditions form their own small AST (:class:`Comparison`,
:class:`And`, :class:`Or`, :class:`Not` over :class:`Attr`/:class:`Const`
operands) so that the optimizer can reason about them symbolically.
"""

from __future__ import annotations

import operator

from ..errors import AlgebraError, SchemaError
from .relation import Relation
from .schema import RelationSchema

# ---------------------------------------------------------------------------
# Condition AST
# ---------------------------------------------------------------------------

_COMPARATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Comparison operators usable in :class:`Comparison`.
COMPARISON_OPS = tuple(_COMPARATORS)


class Operand:
    """Base class for condition operands (attributes and constants)."""

    __slots__ = ()


class Attr(Operand):
    """A reference to an attribute of the input relation."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def resolve(self, schema):
        pos = schema.position(self.name)
        return lambda t: t[pos]

    def attributes(self):
        return {self.name}

    def __eq__(self, other):
        return isinstance(other, Attr) and other.name == self.name

    def __hash__(self):
        return hash(("Attr", self.name))

    def __repr__(self):
        return "Attr(%r)" % self.name

    def __str__(self):
        return self.name


class Const(Operand):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def resolve(self, schema):
        value = self.value
        return lambda t: value

    def attributes(self):
        return set()

    def __eq__(self, other):
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self):
        return hash(("Const", self.value))

    def __repr__(self):
        return "Const(%r)" % (self.value,)

    def __str__(self):
        return repr(self.value)


def _as_operand(value):
    """Coerce strings to attribute references and other values to constants.

    Explicit :class:`Attr`/:class:`Const` always wins; bare strings are
    treated as attribute names (use ``Const("x")`` for a string literal).
    """
    if isinstance(value, Operand):
        return value
    if isinstance(value, str):
        return Attr(value)
    return Const(value)


class Condition:
    """Base class for selection conditions."""

    __slots__ = ()

    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)

    def __invert__(self):
        return Not(self)


class Comparison(Condition):
    """``left op right`` where operands are attributes or constants."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        if op not in _COMPARATORS:
            raise AlgebraError(
                "unknown comparison operator %r (use one of %s)"
                % (op, ", ".join(COMPARISON_OPS))
            )
        self.left = _as_operand(left)
        self.op = op
        self.right = _as_operand(right)

    def compile(self, schema):
        lget = self.left.resolve(schema)
        rget = self.right.resolve(schema)
        cmp = _COMPARATORS[self.op]

        def test(t):
            try:
                return cmp(lget(t), rget(t))
            except TypeError:
                # Mixed-type comparisons other than (in)equality are false,
                # mirroring the unordered abstract domain of the theory.
                return False

        return test

    def attributes(self):
        return self.left.attributes() | self.right.attributes()

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and (other.left, other.op, other.right)
            == (self.left, self.op, self.right)
        )

    def __hash__(self):
        return hash(("Comparison", self.left, self.op, self.right))

    def __repr__(self):
        return "Comparison(%r, %r, %r)" % (self.left, self.op, self.right)

    def __str__(self):
        return "%s %s %s" % (self.left, self.op, self.right)


class And(Condition):
    """Conjunction of conditions."""

    __slots__ = ("parts",)

    def __init__(self, *parts):
        if not parts:
            raise AlgebraError("And needs at least one conjunct")
        flat = []
        for p in parts:
            flat.extend(p.parts if isinstance(p, And) else [p])
        self.parts = tuple(flat)

    def compile(self, schema):
        tests = [p.compile(schema) for p in self.parts]
        return lambda t: all(test(t) for test in tests)

    def attributes(self):
        out = set()
        for p in self.parts:
            out |= p.attributes()
        return out

    def __eq__(self, other):
        return isinstance(other, And) and other.parts == self.parts

    def __hash__(self):
        return hash(("And", self.parts))

    def __repr__(self):
        return "And(%s)" % ", ".join(map(repr, self.parts))

    def __str__(self):
        return " AND ".join(
            "(%s)" % p if isinstance(p, Or) else str(p) for p in self.parts
        )


class Or(Condition):
    """Disjunction of conditions."""

    __slots__ = ("parts",)

    def __init__(self, *parts):
        if not parts:
            raise AlgebraError("Or needs at least one disjunct")
        flat = []
        for p in parts:
            flat.extend(p.parts if isinstance(p, Or) else [p])
        self.parts = tuple(flat)

    def compile(self, schema):
        tests = [p.compile(schema) for p in self.parts]
        return lambda t: any(test(t) for test in tests)

    def attributes(self):
        out = set()
        for p in self.parts:
            out |= p.attributes()
        return out

    def __eq__(self, other):
        return isinstance(other, Or) and other.parts == self.parts

    def __hash__(self):
        return hash(("Or", self.parts))

    def __repr__(self):
        return "Or(%s)" % ", ".join(map(repr, self.parts))

    def __str__(self):
        return " OR ".join(str(p) for p in self.parts)


class Not(Condition):
    """Negation of a condition."""

    __slots__ = ("part",)

    def __init__(self, part):
        self.part = part

    def compile(self, schema):
        test = self.part.compile(schema)
        return lambda t: not test(t)

    def attributes(self):
        return self.part.attributes()

    def __eq__(self, other):
        return isinstance(other, Not) and other.part == self.part

    def __hash__(self):
        return hash(("Not", self.part))

    def __repr__(self):
        return "Not(%r)" % (self.part,)

    def __str__(self):
        return "NOT (%s)" % self.part


def eq(left, right):
    """Shorthand for an equality comparison."""
    return Comparison(left, "=", right)


def neq(left, right):
    """Shorthand for an inequality comparison."""
    return Comparison(left, "!=", right)


def lt(left, right):
    """Shorthand for a less-than comparison."""
    return Comparison(left, "<", right)


def gt(left, right):
    """Shorthand for a greater-than comparison."""
    return Comparison(left, ">", right)


# ---------------------------------------------------------------------------
# Algebra expression AST
# ---------------------------------------------------------------------------


class AlgebraExpr:
    """Base class for relational-algebra expressions."""

    __slots__ = ()

    def schema(self, db_schema):
        """Type-check and return the output :class:`RelationSchema`."""
        raise NotImplementedError

    def children(self):
        """Direct sub-expressions (for generic tree walks)."""
        return ()

    # Operator sugar so expressions compose fluently in examples.

    def select(self, condition):
        return Selection(self, condition)

    def project(self, *attributes):
        return Projection(self, attributes)

    def rename(self, mapping):
        return Rename(self, mapping)

    def join(self, other):
        return NaturalJoin(self, other)

    def product(self, other):
        return Product(self, other)

    def union(self, other):
        return Union(self, other)

    def difference(self, other):
        return Difference(self, other)

    def intersection(self, other):
        return Intersection(self, other)

    def divide(self, other):
        return Division(self, other)

    def size(self):
        """Number of AST nodes (used by the optimizer's cost heuristics)."""
        return 1 + sum(c.size() for c in self.children())


class RelationRef(AlgebraExpr):
    """A reference to a named database relation."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def schema(self, db_schema):
        return db_schema[self.name]

    def __repr__(self):
        return "RelationRef(%r)" % self.name

    def __str__(self):
        return self.name


class ConstantRelation(AlgebraExpr):
    """A literal relation embedded in the expression.

    Needed by the calculus->algebra translation (single-tuple relations for
    constants) and handy in tests.
    """

    __slots__ = ("relation",)

    def __init__(self, relation):
        self.relation = relation

    def schema(self, db_schema):
        return self.relation.schema

    def __repr__(self):
        return "ConstantRelation(%r)" % (self.relation,)

    def __str__(self):
        return "{%d tuples: %s}" % (
            len(self.relation),
            ",".join(self.relation.schema.attributes),
        )


class Selection(AlgebraExpr):
    """σ_condition(child)."""

    __slots__ = ("child", "condition")

    def __init__(self, child, condition):
        if not isinstance(condition, Condition):
            raise AlgebraError(
                "selection condition must be a Condition, got %r" % (condition,)
            )
        self.child = child
        self.condition = condition

    def schema(self, db_schema):
        schema = self.child.schema(db_schema)
        for attr in self.condition.attributes():
            schema.position(attr)  # validates
        return schema

    def children(self):
        return (self.child,)

    def __repr__(self):
        return "Selection(%r, %r)" % (self.child, self.condition)

    def __str__(self):
        return "sigma[%s](%s)" % (self.condition, self.child)


class Projection(AlgebraExpr):
    """π_attributes(child)."""

    __slots__ = ("child", "attributes")

    def __init__(self, child, attributes):
        self.child = child
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise AlgebraError(
                "projection attribute list has duplicates: %r"
                % (self.attributes,)
            )

    def schema(self, db_schema):
        return self.child.schema(db_schema).project(self.attributes)

    def children(self):
        return (self.child,)

    def __repr__(self):
        return "Projection(%r, %r)" % (self.child, list(self.attributes))

    def __str__(self):
        return "pi[%s](%s)" % (",".join(self.attributes), self.child)


class Rename(AlgebraExpr):
    """ρ_mapping(child) — attribute renaming (old name -> new name)."""

    __slots__ = ("child", "mapping")

    def __init__(self, child, mapping):
        self.child = child
        self.mapping = dict(mapping)

    def schema(self, db_schema):
        return self.child.schema(db_schema).rename(self.mapping)

    def children(self):
        return (self.child,)

    def __repr__(self):
        return "Rename(%r, %r)" % (self.child, self.mapping)

    def __str__(self):
        pairs = ",".join(
            "%s->%s" % (o, n) for o, n in sorted(self.mapping.items())
        )
        return "rho[%s](%s)" % (pairs, self.child)


class _Binary(AlgebraExpr):
    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def __repr__(self):
        return "%s(%r, %r)" % (type(self).__name__, self.left, self.right)

    def __str__(self):
        return "(%s %s %s)" % (self.left, self._symbol, self.right)


class Product(_Binary):
    """Cartesian product; attribute names must be disjoint."""

    __slots__ = ()
    _symbol = "x"

    def schema(self, db_schema):
        return self.left.schema(db_schema).concat(self.right.schema(db_schema))


class NaturalJoin(_Binary):
    """Natural join on shared attribute names."""

    __slots__ = ()
    _symbol = "|x|"

    def schema(self, db_schema):
        return self.left.schema(db_schema).join_schema(
            self.right.schema(db_schema)
        )


class Semijoin(_Binary):
    """Left semijoin (⋉): left tuples that match some right tuple."""

    __slots__ = ()
    _symbol = "|x"

    def schema(self, db_schema):
        self.right.schema(db_schema)
        return self.left.schema(db_schema)


class Antijoin(_Binary):
    """Left antijoin (▷): left tuples matching no right tuple."""

    __slots__ = ()
    _symbol = "|>"

    def schema(self, db_schema):
        self.right.schema(db_schema)
        return self.left.schema(db_schema)


class Union(_Binary):
    """Set union of union-compatible expressions."""

    __slots__ = ()
    _symbol = "U"

    def schema(self, db_schema):
        ls = self.left.schema(db_schema)
        rs = self.right.schema(db_schema)
        ls.require_union_compatible(rs, "union")
        return ls


class Difference(_Binary):
    """Set difference of union-compatible expressions."""

    __slots__ = ()
    _symbol = "-"

    def schema(self, db_schema):
        ls = self.left.schema(db_schema)
        rs = self.right.schema(db_schema)
        ls.require_union_compatible(rs, "difference")
        return ls


class Intersection(_Binary):
    """Set intersection of union-compatible expressions."""

    __slots__ = ()
    _symbol = "^"

    def schema(self, db_schema):
        ls = self.left.schema(db_schema)
        rs = self.right.schema(db_schema)
        ls.require_union_compatible(rs, "intersection")
        return ls


class Division(_Binary):
    """Relational division left ÷ right."""

    __slots__ = ()
    _symbol = "/"

    def schema(self, db_schema):
        ls = self.left.schema(db_schema)
        rs = self.right.schema(db_schema)
        if not set(rs.attributes) < set(ls.attributes):
            raise SchemaError(
                "division requires divisor attributes %r to be a proper "
                "subset of dividend attributes %r"
                % (rs.attributes, ls.attributes)
            )
        return ls.project(
            tuple(a for a in ls.attributes if a not in set(rs.attributes))
        )


class ThetaJoin(AlgebraExpr):
    """Theta join: σ_condition(left × right) as a single node."""

    __slots__ = ("left", "right", "condition")

    def __init__(self, left, right, condition):
        self.left = left
        self.right = right
        self.condition = condition

    def schema(self, db_schema):
        schema = self.left.schema(db_schema).concat(
            self.right.schema(db_schema)
        )
        for attr in self.condition.attributes():
            schema.position(attr)
        return schema

    def children(self):
        return (self.left, self.right)

    def __repr__(self):
        return "ThetaJoin(%r, %r, %r)" % (self.left, self.right, self.condition)

    def __str__(self):
        return "(%s |x|[%s] %s)" % (self.left, self.condition, self.right)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def evaluate(expr, db):
    """Evaluate an algebra expression against a database.

    Args:
        expr: an :class:`AlgebraExpr`.
        db: a :class:`~repro.relational.database.Database`.

    Returns:
        The result :class:`~repro.relational.relation.Relation`.
    """
    return dispatch(expr, db, evaluate)


def dispatch(expr, db, recurse):
    """One evaluation step, recursing through ``recurse(child, db)``.

    This is :func:`evaluate`'s body with the recursion made injectable so
    that instrumented walks (e.g. the plan executor's tree-walk work
    accounting) can observe every intermediate result without duplicating
    the dispatch.
    """
    if isinstance(expr, RelationRef):
        return db[expr.name]
    if isinstance(expr, ConstantRelation):
        return expr.relation
    if isinstance(expr, Selection):
        child = recurse(expr.child, db)
        test = expr.condition.compile(child.schema)
        return child.select(test)
    if isinstance(expr, Projection):
        return recurse(expr.child, db).project(expr.attributes)
    if isinstance(expr, Rename):
        return recurse(expr.child, db).rename(expr.mapping)
    if isinstance(expr, Product):
        return recurse(expr.left, db).product(recurse(expr.right, db))
    if isinstance(expr, NaturalJoin):
        return recurse(expr.left, db).natural_join(recurse(expr.right, db))
    if isinstance(expr, Semijoin):
        return recurse(expr.left, db).semijoin(recurse(expr.right, db))
    if isinstance(expr, Antijoin):
        return recurse(expr.left, db).antijoin(recurse(expr.right, db))
    if isinstance(expr, Union):
        return recurse(expr.left, db).union(recurse(expr.right, db))
    if isinstance(expr, Difference):
        return recurse(expr.left, db).difference(recurse(expr.right, db))
    if isinstance(expr, Intersection):
        return recurse(expr.left, db).intersection(recurse(expr.right, db))
    if isinstance(expr, Division):
        return recurse(expr.left, db).divide(recurse(expr.right, db))
    if isinstance(expr, ThetaJoin):
        left = recurse(expr.left, db)
        right = recurse(expr.right, db)
        schema = left.schema.concat(right.schema)
        test = expr.condition.compile(schema)
        return left.theta_join(right, test)
    # Extension point: nodes defined outside this module (e.g. the Codd
    # translation's positional rename) evaluate themselves.
    custom = getattr(expr, "evaluate_node", None)
    if custom is not None:
        return custom(db, recurse)
    raise AlgebraError("unknown algebra expression %r" % (expr,))


def relation_names(expr):
    """Set of database relation names referenced anywhere in ``expr``."""
    names = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, RelationRef):
            names.add(node.name)
        stack.extend(node.children())
    return names


def singleton_relation(attribute, value, name="const"):
    """A one-tuple, one-attribute constant relation (translation helper)."""
    schema = RelationSchema(name, (attribute,))
    return Relation(schema, [(value,)])
