"""Codd's Theorem, executably: calculus <-> algebra translations.

The paper singles out Codd's Theorem [Co2] as a "solidly positive" result
"because of its double implication that the calculus is implementable and
the algebra expressive".  This module implements both implications:

* :func:`calculus_to_algebra` — every *safe-range* calculus query compiles
  to an equivalent algebra expression (the calculus is implementable).
  The construction follows the classical relational-algebra-normal-form
  (RANF) translation: conjunctions become natural joins and antijoins,
  disjunctions unions, existentials projections.
* :func:`algebra_to_calculus` — every algebra expression has an equivalent
  safe-range calculus query (the algebra is expressive).

:func:`check_codd_equivalence` closes the loop empirically, in the spirit
of the paper's "positive results are invitations to experiment": it runs a
query through both semantics on a concrete database and compares answers.
"""

from __future__ import annotations

from ..errors import TranslationError
from . import algebra as ra
from .calculus import (
    AndF,
    Compare,
    Cst,
    Exists,
    Forall,
    Implies,
    NotF,
    OrF,
    Query,
    RelAtom,
    Var,
    evaluate_query,
    is_safe_range,
    rename_apart,
    to_srnf,
)
from .relation import Relation
from .schema import RelationSchema

# ---------------------------------------------------------------------------
# Calculus -> algebra (the "calculus is implementable" direction)
# ---------------------------------------------------------------------------


def calculus_to_algebra(query, db_schema=None):
    """Compile a safe-range calculus query to a relational-algebra expression.

    Args:
        query: a :class:`~repro.relational.calculus.Query`.
        db_schema: optional :class:`~repro.relational.schema.DatabaseSchema`
            used to sanity-check the produced expression.

    Returns:
        An :class:`~repro.relational.algebra.AlgebraExpr` whose output
        attributes are the query's head variables, in head order.

    Raises:
        TranslationError: if the query is not safe-range.
    """
    if not is_safe_range(query.formula):
        raise TranslationError(
            "query is not safe-range; Codd's Theorem covers only "
            "domain-independent (safe) calculus queries: %s" % (query,)
        )
    srnf = to_srnf(query.formula)
    expr, attrs = _translate(srnf)
    if tuple(attrs) != tuple(query.head):
        expr = ra.Projection(expr, query.head)
    if db_schema is not None:
        expr.schema(db_schema)  # type-check
    return expr


def _translate(formula):
    """Translate an SRNF safe-range formula.

    Returns:
        ``(expr, attrs)`` where ``attrs`` is the output attribute tuple
        (exactly the free variables of the formula, in a canonical order).
    """
    if isinstance(formula, RelAtom):
        return _translate_atom(formula)
    if isinstance(formula, Compare):
        return _translate_lone_comparison(formula)
    if isinstance(formula, AndF):
        return _translate_conjunction(formula)
    if isinstance(formula, OrF):
        return _translate_disjunction(formula)
    if isinstance(formula, Exists):
        inner, attrs = _translate(formula.part)
        keep = tuple(a for a in attrs if a not in set(formula.variables))
        return ra.Projection(inner, keep), keep
    if isinstance(formula, NotF):
        if not formula.part.free_variables():
            # A negated *sentence* is safe-range (rr = free = {}): its
            # translation is the 0-ary complement, {()} minus the inner
            # 0-ary result.
            inner, _attrs = _translate(formula.part)
            true_relation = Relation(
                RelationSchema("bool", ()), [()], validate=False
            )
            return (
                ra.Difference(ra.ConstantRelation(true_relation), inner),
                (),
            )
        raise TranslationError(
            "negation is only translatable inside a conjunction that ranges "
            "its variables (got top-level %s)" % (formula,)
        )
    raise TranslationError("cannot translate formula %r" % (formula,))


def _translate_atom(atom):
    """R(t1..tn) -> select/project/rename over the base relation."""
    expr = ra.RelationRef(atom.relation)
    # Selections for constants and repeated variables use positional
    # attribute handles; we rename every position to a fresh unique handle
    # first so the logic is uniform regardless of the base schema.
    handles = tuple("__p%d" % i for i in range(len(atom.terms)))
    expr = _rename_to_positions(expr, atom.relation, handles)
    first_seen = {}
    for i, t in enumerate(atom.terms):
        if isinstance(t, Cst):
            expr = ra.Selection(
                expr, ra.Comparison(ra.Attr(handles[i]), "=", ra.Const(t.value))
            )
        else:
            if t.name in first_seen:
                expr = ra.Selection(
                    expr,
                    ra.Comparison(
                        ra.Attr(handles[first_seen[t.name]]),
                        "=",
                        ra.Attr(handles[i]),
                    ),
                )
            else:
                first_seen[t.name] = i
    attrs = tuple(sorted(first_seen))
    keep = tuple(handles[first_seen[v]] for v in attrs)
    expr = ra.Projection(expr, keep)
    if keep:
        expr = ra.Rename(expr, dict(zip(keep, attrs)))
    return expr, attrs


class _PositionalRename(ra.AlgebraExpr):
    """Rename a base relation's attributes positionally.

    A plain :class:`~repro.relational.algebra.Rename` maps old->new names,
    which cannot express "rename position i" without knowing the base
    schema.  The calculus translation does not know base schemas, so this
    node defers the mapping to schema-resolution/evaluation time.
    """

    __slots__ = ("child", "handles")

    def __init__(self, child, handles):
        self.child = child
        self.handles = tuple(handles)

    def schema(self, db_schema):
        base = self.child.schema(db_schema)
        if base.arity != len(self.handles):
            raise TranslationError(
                "atom arity %d does not match relation %r arity %d"
                % (len(self.handles), base.name, base.arity)
            )
        return RelationSchema(base.name, self.handles, base.domains)

    def children(self):
        return (self.child,)

    def evaluate_node(self, db, evaluate):
        base = evaluate(self.child, db)
        if base.schema.arity != len(self.handles):
            raise TranslationError(
                "atom arity %d does not match relation %r arity %d"
                % (len(self.handles), base.schema.name, base.schema.arity)
            )
        schema = RelationSchema(
            base.schema.name, self.handles, base.schema.domains
        )
        return Relation(schema, base.tuples, validate=False)

    def canonicalize_node(self, db_schema, recurse):
        child = recurse(self.child)
        base = child.schema(db_schema)
        if base.arity != len(self.handles):
            raise TranslationError(
                "atom arity %d does not match relation %r arity %d"
                % (len(self.handles), base.name, base.arity)
            )
        mapping = {
            old: new
            for old, new in zip(base.attributes, self.handles)
            if old != new
        }
        return ra.Rename(child, mapping) if mapping else child

    def __repr__(self):
        return "_PositionalRename(%r, %r)" % (self.child, list(self.handles))

    def __str__(self):
        return "rho*[%s](%s)" % (",".join(self.handles), self.child)


def _rename_to_positions(expr, relation_name, handles):
    return _PositionalRename(expr, handles)


def _translate_lone_comparison(comp):
    """A comparison with no ranging conjunction.

    Only ``x = c`` (a singleton relation) and ground comparisons (0-ary
    true/false) are safe on their own.
    """
    left, right = comp.left, comp.right
    if isinstance(left, Cst) and isinstance(right, Cst):
        truth = _ground_compare(left.value, comp.op, right.value)
        schema = RelationSchema("bool", ())
        rel = Relation(schema, [()] if truth else [], validate=False)
        return ra.ConstantRelation(rel), ()
    if comp.op == "=":
        if isinstance(left, Var) and isinstance(right, Cst):
            rel = ra.singleton_relation(left.name, right.value)
            return ra.ConstantRelation(rel), (left.name,)
        if isinstance(right, Var) and isinstance(left, Cst):
            rel = ra.singleton_relation(right.name, left.value)
            return ra.ConstantRelation(rel), (right.name,)
    raise TranslationError(
        "comparison %s is unsafe outside a ranging conjunction" % (comp,)
    )


def _ground_compare(a, op, b):
    from .calculus import _compare_values

    return _compare_values(a, op, b)


def _translate_disjunction(formula):
    parts = []
    attr_sets = set()
    for p in formula.parts:
        expr, attrs = _translate(p)
        attr_sets.add(frozenset(attrs))
        parts.append((expr, attrs))
    if len(attr_sets) != 1:
        raise TranslationError(
            "disjuncts of a safe union must share free variables, got %s"
            % sorted(map(sorted, attr_sets))
        )
    target = tuple(sorted(attr_sets.pop()))
    out = None
    for expr, attrs in parts:
        if tuple(attrs) != target:
            expr = ra.Projection(expr, target)
        out = expr if out is None else ra.Union(out, expr)
    return out, target


def _translate_conjunction(formula):
    """The heart of the RANF translation.

    Positive conjuncts are joined; variable=constant equalities contribute
    singleton relations; remaining comparisons become selections once their
    variables are ranged; ``x = y`` with only one side ranged *extends* the
    expression with the other variable; negated conjuncts become antijoins
    once their free variables are covered.
    """
    positive = []
    equalities = []  # var = var
    constraints = []  # other comparisons
    negative = []
    for part in formula.parts:
        if isinstance(part, (RelAtom, OrF, Exists, AndF)):
            positive.append(part)
        elif isinstance(part, Compare):
            left, right = part.left, part.right
            both_vars = isinstance(left, Var) and isinstance(right, Var)
            if part.op == "=" and both_vars:
                equalities.append(part)
            elif part.op == "=" and (
                isinstance(left, Cst) or isinstance(right, Cst)
            ) and not (isinstance(left, Cst) and isinstance(right, Cst)):
                # x = c ranges x: treat as a positive singleton.
                positive.append(part)
            else:
                constraints.append(part)
        elif isinstance(part, NotF):
            negative.append(part.part)
        else:
            raise TranslationError("unexpected conjunct %r" % (part,))

    expr = None
    attrs = ()
    for part in positive:
        if isinstance(part, Compare):
            sub, sub_attrs = _translate_lone_comparison(part)
        else:
            sub, sub_attrs = _translate(part)
        if expr is None:
            expr, attrs = sub, sub_attrs
        else:
            expr = ra.NaturalJoin(expr, sub)
            attrs = attrs + tuple(a for a in sub_attrs if a not in set(attrs))

    if expr is None:
        raise TranslationError(
            "conjunction %s has no ranging (positive) conjunct" % (formula,)
        )

    # Fixpoint: apply equalities, constraints, and negations as their
    # variables become available.
    pending_eq = list(equalities)
    pending_con = list(constraints)
    pending_neg = list(negative)
    progress = True
    while progress and (pending_eq or pending_con or pending_neg):
        progress = False
        bound = set(attrs)

        still_eq = []
        for comp in pending_eq:
            a, b = comp.left.name, comp.right.name
            if a in bound and b in bound:
                expr = ra.Selection(
                    expr, ra.Comparison(ra.Attr(a), "=", ra.Attr(b))
                )
                progress = True
            elif a in bound or b in bound:
                have, need = (a, b) if a in bound else (b, a)
                # Extend: join with a copy of the ranged column renamed.
                copy = ra.Rename(ra.Projection(expr, (have,)), {have: need})
                expr = ra.Selection(
                    ra.Product(expr, copy),
                    ra.Comparison(ra.Attr(have), "=", ra.Attr(need)),
                )
                attrs = attrs + (need,)
                bound.add(need)
                progress = True
            else:
                still_eq.append(comp)
        pending_eq = still_eq

        still_con = []
        for comp in pending_con:
            needed = {
                t.name
                for t in (comp.left, comp.right)
                if isinstance(t, Var)
            }
            if needed <= bound:
                expr = ra.Selection(expr, _compare_to_condition(comp))
                progress = True
            else:
                still_con.append(comp)
        pending_con = still_con

        still_neg = []
        for part in pending_neg:
            free = part.free_variables()
            if free <= bound:
                sub, sub_attrs = _translate(part)
                if free:
                    expr = ra.Antijoin(expr, sub)
                else:
                    # Ground negation: antijoin on the 0-ary subresult —
                    # empty sub keeps everything, nonempty kills everything.
                    expr = ra.Antijoin(expr, sub)
                progress = True
            else:
                still_neg.append(part)
        pending_neg = still_neg

    if pending_eq or pending_con or pending_neg:
        leftovers = pending_eq + pending_con + [NotF(p) for p in pending_neg]
        raise TranslationError(
            "conjunction is not range-restricted; stuck on: %s"
            % "; ".join(str(p) for p in leftovers)
        )
    return expr, attrs


def _compare_to_condition(comp):
    def operand(t):
        return ra.Attr(t.name) if isinstance(t, Var) else ra.Const(t.value)

    return ra.Comparison(operand(comp.left), comp.op, operand(comp.right))


# ---------------------------------------------------------------------------
# Algebra -> calculus (the "algebra is expressive" direction)
# ---------------------------------------------------------------------------


def algebra_to_calculus(expr, db_schema):
    """Translate an algebra expression into an equivalent calculus query.

    The resulting query's head variables are the expression's output
    attributes, and its formula is safe-range by construction.

    Args:
        expr: an :class:`~repro.relational.algebra.AlgebraExpr`.
        db_schema: the database schema (needed to name atom positions).
    """
    formula, head = _to_formula(expr, db_schema)
    formula = rename_apart(formula)
    return Query(head, formula)


def _to_formula(expr, db_schema):
    """Returns ``(formula, head_attrs)``; free vars are named by attributes."""
    if isinstance(expr, ra.RelationRef):
        schema = db_schema[expr.name]
        head = schema.attributes
        return RelAtom(expr.name, [Var(a) for a in head]), head
    if isinstance(expr, ra.ConstantRelation):
        return _constant_to_formula(expr.relation)
    if isinstance(expr, ra.Selection):
        inner, head = _to_formula(expr.child, db_schema)
        return AndF(inner, _condition_to_formula(expr.condition)), head
    if isinstance(expr, ra.Projection):
        inner, head = _to_formula(expr.child, db_schema)
        removed = tuple(a for a in head if a not in set(expr.attributes))
        out = Exists(removed, inner) if removed else inner
        return out, tuple(expr.attributes)
    if isinstance(expr, ra.Rename):
        inner, head = _to_formula(expr.child, db_schema)
        substitution = {old: Var(new) for old, new in expr.mapping.items()}
        return (
            _substitute(inner, substitution),
            tuple(expr.mapping.get(a, a) for a in head),
        )
    if isinstance(expr, (ra.Product, ra.NaturalJoin)):
        lf, lh = _to_formula(expr.left, db_schema)
        rf, rh = _to_formula(expr.right, db_schema)
        head = lh + tuple(a for a in rh if a not in set(lh))
        return AndF(lf, rf), head
    if isinstance(expr, ra.ThetaJoin):
        lf, lh = _to_formula(expr.left, db_schema)
        rf, rh = _to_formula(expr.right, db_schema)
        head = lh + tuple(a for a in rh if a not in set(lh))
        return (
            AndF(lf, rf, _condition_to_formula(expr.condition)),
            head,
        )
    if isinstance(expr, ra.Union):
        lf, lh = _to_formula(expr.left, db_schema)
        rf, rh = _to_formula(expr.right, db_schema)
        rf = _align(rf, rh, lh)
        return OrF(lf, rf), lh
    if isinstance(expr, ra.Intersection):
        lf, lh = _to_formula(expr.left, db_schema)
        rf, rh = _to_formula(expr.right, db_schema)
        rf = _align(rf, rh, lh)
        return AndF(lf, rf), lh
    if isinstance(expr, ra.Difference):
        lf, lh = _to_formula(expr.left, db_schema)
        rf, rh = _to_formula(expr.right, db_schema)
        rf = _align(rf, rh, lh)
        return AndF(lf, NotF(rf)), lh
    if isinstance(expr, ra.Semijoin):
        lf, lh = _to_formula(expr.left, db_schema)
        rf, rh = _to_formula(expr.right, db_schema)
        only_right = tuple(a for a in rh if a not in set(lh))
        inner = Exists(only_right, rf) if only_right else rf
        return AndF(lf, inner), lh
    if isinstance(expr, ra.Antijoin):
        lf, lh = _to_formula(expr.left, db_schema)
        rf, rh = _to_formula(expr.right, db_schema)
        only_right = tuple(a for a in rh if a not in set(lh))
        inner = Exists(only_right, rf) if only_right else rf
        return AndF(lf, NotF(inner)), lh
    if isinstance(expr, ra.Division):
        lf, lh = _to_formula(expr.left, db_schema)
        rf, rh = _to_formula(expr.right, db_schema)
        quotient = tuple(a for a in lh if a not in set(rh))
        divisor = tuple(rh)
        ranged = Exists(divisor, lf)
        covers = Forall(divisor, Implies(rf, lf))
        return AndF(ranged, covers), quotient
    raise TranslationError("cannot translate algebra node %r" % (expr,))


def _align(formula, have, want):
    """Rename free variables ``have`` to ``want`` (positionally)."""
    if tuple(have) == tuple(want):
        return formula
    substitution = {h: Var(w) for h, w in zip(have, want)}
    return _substitute(formula, substitution)


def _constant_to_formula(relation):
    attrs = relation.schema.attributes
    if not attrs:
        truth = bool(relation.tuples)
        return (
            Compare(Cst(0), "=", Cst(0) if truth else Cst(1)),
            (),
        )
    if not relation.tuples:
        false_parts = [Compare(Var(a), "!=", Var(a)) for a in attrs]
        return AndF(*false_parts), attrs
    disjuncts = []
    for tup in relation.sorted_tuples():
        disjuncts.append(
            AndF(*[Compare(Var(a), "=", Cst(v)) for a, v in zip(attrs, tup)])
        )
    return OrF(*disjuncts), attrs


def _condition_to_formula(condition):
    if isinstance(condition, ra.Comparison):
        def conv(operand):
            if isinstance(operand, ra.Attr):
                return Var(operand.name)
            return Cst(operand.value)

        return Compare(conv(condition.left), condition.op, conv(condition.right))
    if isinstance(condition, ra.And):
        return AndF(*[_condition_to_formula(p) for p in condition.parts])
    if isinstance(condition, ra.Or):
        return OrF(*[_condition_to_formula(p) for p in condition.parts])
    if isinstance(condition, ra.Not):
        return NotF(_condition_to_formula(condition.part))
    raise TranslationError("cannot translate condition %r" % (condition,))


def _substitute(formula, substitution):
    """Capture-avoiding substitution of free variables by terms."""
    if isinstance(formula, RelAtom):
        return RelAtom(
            formula.relation,
            [
                substitution.get(t.name, t) if isinstance(t, Var) else t
                for t in formula.terms
            ],
        )
    if isinstance(formula, Compare):
        def sub(t):
            if isinstance(t, Var):
                return substitution.get(t.name, t)
            return t

        return Compare(sub(formula.left), formula.op, sub(formula.right))
    if isinstance(formula, AndF):
        return AndF(*[_substitute(p, substitution) for p in formula.parts])
    if isinstance(formula, OrF):
        return OrF(*[_substitute(p, substitution) for p in formula.parts])
    if isinstance(formula, NotF):
        return NotF(_substitute(formula.part, substitution))
    if isinstance(formula, Exists):
        inner_sub = {
            k: v for k, v in substitution.items() if k not in formula.variables
        }
        return Exists(formula.variables, _substitute(formula.part, inner_sub))
    if isinstance(formula, Forall):
        inner_sub = {
            k: v for k, v in substitution.items() if k not in formula.variables
        }
        return Forall(formula.variables, _substitute(formula.part, inner_sub))
    if isinstance(formula, Implies):
        return Implies(
            _substitute(formula.antecedent, substitution),
            _substitute(formula.consequent, substitution),
        )
    raise TranslationError("cannot substitute in %r" % (formula,))


# ---------------------------------------------------------------------------
# Empirical equivalence (positive results as invitations to experiment)
# ---------------------------------------------------------------------------


def check_codd_equivalence(query, db):
    """Run a safe calculus query both ways and compare the answers.

    Returns:
        ``(calculus_answer, algebra_answer, equal)`` — the two result
        relations and whether they agree as sets of tuples.
    """
    from .algebra import evaluate

    calculus_answer = evaluate_query(query, db)
    expr = calculus_to_algebra(query, db.schema())
    algebra_answer = evaluate(expr, db)
    equal = (
        calculus_answer.tuples == algebra_answer.tuples
        and calculus_answer.schema.attributes == algebra_answer.schema.attributes
    )
    return calculus_answer, algebra_answer, equal
