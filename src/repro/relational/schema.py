"""Relation and database schemas.

A :class:`RelationSchema` is an ordered sequence of distinct attribute
names, optionally typed by :class:`~repro.relational.types.Domain` objects.
Order matters because tuples are stored positionally; set-based notions
(union compatibility, natural-join attribute sharing) are derived from the
names.

A :class:`DatabaseSchema` maps relation names to relation schemas and is
what the algebra/calculus type checkers and the dependency-theory modules
consume.
"""

from __future__ import annotations

from ..errors import SchemaError
from .types import ANY, Domain


class RelationSchema:
    """An ordered, typed attribute list for one relation.

    Args:
        name: relation name (used in error messages and database schemas).
        attributes: iterable of attribute names; must be distinct.
        domains: optional iterable of :class:`Domain`, parallel to
            ``attributes``; defaults to :data:`~repro.relational.types.ANY`
            for every attribute.
    """

    __slots__ = ("name", "attributes", "domains", "_index")

    def __init__(self, name, attributes, domains=None):
        attributes = tuple(attributes)
        if len(set(attributes)) != len(attributes):
            raise SchemaError(
                "duplicate attribute names in schema %r: %r" % (name, attributes)
            )
        for attr in attributes:
            if not isinstance(attr, str) or not attr:
                raise SchemaError(
                    "attribute names must be non-empty strings, got %r" % (attr,)
                )
        if domains is None:
            domains = (ANY,) * len(attributes)
        else:
            domains = tuple(domains)
            if len(domains) != len(attributes):
                raise SchemaError(
                    "schema %r: %d attributes but %d domains"
                    % (name, len(attributes), len(domains))
                )
            for dom in domains:
                if not isinstance(dom, Domain):
                    raise SchemaError("expected Domain, got %r" % (dom,))
        self.name = name
        self.attributes = attributes
        self.domains = domains
        self._index = {attr: i for i, attr in enumerate(attributes)}

    # -- basic queries -------------------------------------------------

    @property
    def arity(self):
        """Number of attributes."""
        return len(self.attributes)

    def position(self, attribute):
        """Index of ``attribute`` in the tuple layout.

        Raises:
            SchemaError: if the attribute is not part of the schema.
        """
        try:
            return self._index[attribute]
        except KeyError:
            raise SchemaError(
                "relation %r has no attribute %r (has: %s)"
                % (self.name, attribute, ", ".join(self.attributes))
            ) from None

    def domain_of(self, attribute):
        """Domain of ``attribute``."""
        return self.domains[self.position(attribute)]

    def __contains__(self, attribute):
        return attribute in self._index

    def __len__(self):
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    # -- derived schemas -----------------------------------------------

    def project(self, attributes, name=None):
        """Schema of a projection onto ``attributes`` (order as given)."""
        attributes = tuple(attributes)
        domains = tuple(self.domain_of(a) for a in attributes)
        return RelationSchema(name or self.name, attributes, domains)

    def rename(self, mapping, name=None):
        """Schema with attributes renamed via ``mapping`` (old -> new).

        Attributes not in the mapping keep their names.
        """
        for old in mapping:
            self.position(old)  # validates
        new_attrs = tuple(mapping.get(a, a) for a in self.attributes)
        return RelationSchema(name or self.name, new_attrs, self.domains)

    def prefixed(self, prefix, separator="."):
        """Schema with every attribute prefixed, e.g. for qualified joins."""
        return RelationSchema(
            self.name,
            tuple(prefix + separator + a for a in self.attributes),
            self.domains,
        )

    def concat(self, other, name=None):
        """Schema of a cross product: attributes of self then other.

        Raises:
            SchemaError: on attribute-name clashes (rename first).
        """
        clash = set(self.attributes) & set(other.attributes)
        if clash:
            raise SchemaError(
                "cross product attribute clash: %s (rename one side)"
                % ", ".join(sorted(clash))
            )
        return RelationSchema(
            name or "%s_x_%s" % (self.name, other.name),
            self.attributes + other.attributes,
            self.domains + other.domains,
        )

    def join_schema(self, other, name=None):
        """Schema of a natural join: self's attributes, then other's new ones."""
        extra = tuple(a for a in other.attributes if a not in self._index)
        extra_doms = tuple(other.domain_of(a) for a in extra)
        return RelationSchema(
            name or "%s_join_%s" % (self.name, other.name),
            self.attributes + extra,
            self.domains + extra_doms,
        )

    def shared_attributes(self, other):
        """Attributes common to both schemas, in self's order."""
        return tuple(a for a in self.attributes if a in other)

    def is_union_compatible(self, other):
        """True when both schemas have identical attribute lists."""
        return self.attributes == other.attributes

    def require_union_compatible(self, other, operation="union"):
        """Raise :class:`SchemaError` unless union-compatible with ``other``."""
        if not self.is_union_compatible(other):
            raise SchemaError(
                "%s requires identical attribute lists: %r vs %r"
                % (operation, self.attributes, other.attributes)
            )

    # -- value checking --------------------------------------------------

    def validate_tuple(self, values):
        """Check arity and domains of a raw tuple; return it normalized.

        Returns:
            The tuple, as a plain ``tuple``.

        Raises:
            SchemaError: on arity mismatch or domain violation.
        """
        values = tuple(values)
        if len(values) != self.arity:
            raise SchemaError(
                "relation %r expects arity %d, got tuple of arity %d: %r"
                % (self.name, self.arity, len(values), values)
            )
        for attr, dom, value in zip(self.attributes, self.domains, values):
            if value not in dom:
                raise SchemaError(
                    "relation %r attribute %r: value %r not in domain %s"
                    % (self.name, attr, value, dom.name)
                )
        return values

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other):
        return (
            isinstance(other, RelationSchema)
            and self.attributes == other.attributes
            and self.domains == other.domains
        )

    def __hash__(self):
        return hash((self.attributes, self.domains))

    def __repr__(self):
        return "RelationSchema(%r, %r)" % (self.name, list(self.attributes))


class DatabaseSchema:
    """A named collection of relation schemas.

    Behaves as a read-mostly mapping from relation name to
    :class:`RelationSchema`.
    """

    __slots__ = ("_schemas",)

    def __init__(self, schemas=()):
        self._schemas = {}
        for schema in schemas:
            self.add(schema)

    def add(self, schema):
        """Register a relation schema; names must be unique."""
        if not isinstance(schema, RelationSchema):
            raise SchemaError("expected RelationSchema, got %r" % (schema,))
        if schema.name in self._schemas:
            raise SchemaError("duplicate relation name %r" % (schema.name,))
        self._schemas[schema.name] = schema
        return schema

    def __getitem__(self, name):
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(
                "no relation named %r in database schema (has: %s)"
                % (name, ", ".join(sorted(self._schemas)) or "<empty>")
            ) from None

    def __contains__(self, name):
        return name in self._schemas

    def __iter__(self):
        return iter(self._schemas)

    def __len__(self):
        return len(self._schemas)

    def items(self):
        return self._schemas.items()

    def names(self):
        """Relation names, sorted for deterministic iteration."""
        return sorted(self._schemas)

    def __repr__(self):
        return "DatabaseSchema(%s)" % ", ".join(sorted(self._schemas))
