"""Relation instances: immutable sets of tuples over a schema.

The theoretical relational model is *set*-based (no duplicate rows, no row
order), and all the classical results the paper surveys (Codd's Theorem,
normalization, the chase) are stated for set semantics — so that is what we
implement.  A :class:`Relation` is a frozen set of positional tuples plus a
:class:`~repro.relational.schema.RelationSchema`.

The low-level tuple operators here (project/select/join on raw tuples) are
the shared physical layer used by the algebra evaluator, the calculus
evaluator, the Datalog engines, and Yannakakis' algorithm.
"""

from __future__ import annotations

from ..errors import RelationError, SchemaError
from .schema import RelationSchema


class Relation:
    """An immutable set of tuples conforming to a schema.

    Args:
        schema: the relation schema.
        tuples: iterable of raw tuples (each validated against the schema).
        validate: skip per-tuple domain checks when False (used internally
            by operators whose outputs are correct by construction).
    """

    __slots__ = ("schema", "tuples", "_indexes")

    def __init__(self, schema, tuples=(), validate=True):
        if not isinstance(schema, RelationSchema):
            raise RelationError("expected RelationSchema, got %r" % (schema,))
        self.schema = schema
        if validate:
            self.tuples = frozenset(
                schema.validate_tuple(t) for t in tuples
            )
        else:
            self.tuples = frozenset(tuples)
        self._indexes = None

    def _key_index(self, positions):
        """Cached hash index ``{key: [tuples]}`` on a position pattern.

        Relations are immutable, so an index never needs invalidating:
        built once on first use, it serves every later join/semijoin on
        the same key — e.g. the repeated semijoin sweeps of Yannakakis'
        full reducer probe one index per (relation, shared-key) pair.
        """
        if self._indexes is None:
            self._indexes = {}
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for t in self.tuples:
                key = tuple(t[p] for p in positions)
                index.setdefault(key, []).append(t)
            self._indexes[positions] = index
        return index

    def cached_index_patterns(self):
        """Position patterns currently cached (observability for tests)."""
        if self._indexes is None:
            return []
        return sorted(self._indexes)

    # -- pickling ---------------------------------------------------------

    def __getstate__(self):
        # Cached indexes are derived data and can be large; rebuild them
        # lazily on the other side of the process boundary instead of
        # shipping them (plan shards pickle Relations to pool workers).
        return (self.schema, self.tuples)

    def __setstate__(self, state):
        self.schema, self.tuples = state
        self._indexes = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_dicts(cls, schema, rows):
        """Build a relation from dict rows keyed by attribute name."""
        tuples = []
        for row in rows:
            missing = [a for a in schema.attributes if a not in row]
            if missing:
                raise RelationError(
                    "row %r missing attributes %s" % (row, ", ".join(missing))
                )
            tuples.append(tuple(row[a] for a in schema.attributes))
        return cls(schema, tuples)

    @classmethod
    def empty(cls, schema):
        """The empty relation over ``schema``."""
        return cls(schema, (), validate=False)

    # -- basic queries ------------------------------------------------------

    def __len__(self):
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __contains__(self, values):
        return tuple(values) in self.tuples

    def __bool__(self):
        return bool(self.tuples)

    def sorted_tuples(self):
        """Tuples in a deterministic order (for display and golden tests)."""
        return sorted(self.tuples, key=lambda t: tuple(map(_sort_key, t)))

    def to_dicts(self):
        """Rows as dicts keyed by attribute name, deterministically ordered."""
        attrs = self.schema.attributes
        return [dict(zip(attrs, t)) for t in self.sorted_tuples()]

    def active_domain(self):
        """Set of all values occurring anywhere in the relation."""
        values = set()
        for t in self.tuples:
            values.update(t)
        return values

    def value(self, tup, attribute):
        """Value of ``attribute`` within raw tuple ``tup``."""
        return tup[self.schema.position(attribute)]

    # -- algebra primitives -------------------------------------------------
    #
    # These are the physical operators; the algebra module builds the
    # logical AST on top of them.

    def select(self, predicate):
        """Tuples satisfying ``predicate(raw_tuple)``; same schema."""
        return Relation(
            self.schema,
            (t for t in self.tuples if predicate(t)),
            validate=False,
        )

    def project(self, attributes):
        """Projection onto ``attributes`` (duplicates eliminated)."""
        positions = [self.schema.position(a) for a in attributes]
        out_schema = self.schema.project(attributes)
        return Relation(
            out_schema,
            (tuple(t[p] for p in positions) for t in self.tuples),
            validate=False,
        )

    def rename(self, mapping, name=None):
        """Relation with attributes renamed; tuples unchanged."""
        return Relation(
            self.schema.rename(mapping, name=name), self.tuples, validate=False
        )

    def with_name(self, name):
        """Same relation under a different relation name."""
        schema = RelationSchema(name, self.schema.attributes, self.schema.domains)
        return Relation(schema, self.tuples, validate=False)

    def union(self, other):
        """Set union; schemas must be union-compatible."""
        self.schema.require_union_compatible(other.schema, "union")
        return Relation(self.schema, self.tuples | other.tuples, validate=False)

    def difference(self, other):
        """Set difference; schemas must be union-compatible."""
        self.schema.require_union_compatible(other.schema, "difference")
        return Relation(self.schema, self.tuples - other.tuples, validate=False)

    def intersection(self, other):
        """Set intersection; schemas must be union-compatible."""
        self.schema.require_union_compatible(other.schema, "intersection")
        return Relation(self.schema, self.tuples & other.tuples, validate=False)

    def product(self, other):
        """Cartesian product; attribute names must not clash."""
        out_schema = self.schema.concat(other.schema)
        return Relation(
            out_schema,
            (s + t for s in self.tuples for t in other.tuples),
            validate=False,
        )

    def natural_join(self, other):
        """Natural join on shared attribute names (hash join).

        Degenerates to a cartesian product when no attributes are shared,
        and to an intersection when all are — exactly the textbook
        definition.
        """
        shared = self.schema.shared_attributes(other.schema)
        out_schema = self.schema.join_schema(other.schema)
        left_pos = [self.schema.position(a) for a in shared]
        right_pos = [other.schema.position(a) for a in shared]
        extra_pos = [
            other.schema.position(a)
            for a in other.schema.attributes
            if a not in self.schema
        ]
        index = other._key_index(tuple(right_pos))
        out = []
        for s in self.tuples:
            key = tuple(s[p] for p in left_pos)
            for t in index.get(key, ()):
                out.append(s + tuple(t[p] for p in extra_pos))
        return Relation(out_schema, out, validate=False)

    def theta_join(self, other, predicate):
        """Theta join: pairs satisfying ``predicate(combined_tuple)``.

        Schema and output equal ``self.product(other).select(predicate)``,
        but the predicate is applied *during* enumeration so rejected
        pairs are never materialized — on a selective condition the
        intermediate stays at output size instead of |self|·|other|.
        """
        out_schema = self.schema.concat(other.schema)
        return Relation(
            out_schema,
            (
                s + t
                for s in self.tuples
                for t in other.tuples
                if predicate(s + t)
            ),
            validate=False,
        )

    def semijoin(self, other):
        """Left semijoin: tuples of self that join with some tuple of other.

        This is the workhorse of Yannakakis' algorithm.
        """
        shared = self.schema.shared_attributes(other.schema)
        if not shared:
            return self if other.tuples else Relation.empty(self.schema)
        right_pos = [other.schema.position(a) for a in shared]
        keys = other._key_index(tuple(right_pos))
        left_pos = [self.schema.position(a) for a in shared]
        return Relation(
            self.schema,
            (t for t in self.tuples if tuple(t[p] for p in left_pos) in keys),
            validate=False,
        )

    def antijoin(self, other):
        """Left antijoin: tuples of self that join with *no* tuple of other."""
        shared = self.schema.shared_attributes(other.schema)
        if not shared:
            return Relation.empty(self.schema) if other.tuples else self
        right_pos = [other.schema.position(a) for a in shared]
        keys = other._key_index(tuple(right_pos))
        left_pos = [self.schema.position(a) for a in shared]
        return Relation(
            self.schema,
            (
                t
                for t in self.tuples
                if tuple(t[p] for p in left_pos) not in keys
            ),
            validate=False,
        )

    def divide(self, other):
        """Relational division self ÷ other.

        ``other``'s attributes must be a proper subset of self's.  Returns
        tuples over the remaining attributes that pair with *every* tuple
        of ``other``.
        """
        divisor_attrs = set(other.schema.attributes)
        own_attrs = set(self.schema.attributes)
        if not divisor_attrs < own_attrs:
            raise SchemaError(
                "division requires divisor attributes to be a proper subset: "
                "%r vs %r"
                % (other.schema.attributes, self.schema.attributes)
            )
        quotient_attrs = tuple(
            a for a in self.schema.attributes if a not in divisor_attrs
        )
        # pi_Q(self) - pi_Q( (pi_Q(self) x other) - self )
        candidates = self.project(quotient_attrs)
        if not other.tuples:
            return candidates
        required = candidates.product(
            other.with_name(other.schema.name + "_div")
        )
        # Align required's attribute order to self's before differencing.
        aligned = required.project(self.schema.attributes)
        missing = aligned.difference(self.project(self.schema.attributes))
        return candidates.difference(missing.project(quotient_attrs))

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other):
        """Equality is set equality over identically-*named* attributes.

        Domains are ignored: two relations with the same attribute names and
        tuples are the same relation in the theoretical model.
        """
        return (
            isinstance(other, Relation)
            and self.schema.attributes == other.schema.attributes
            and self.tuples == other.tuples
        )

    def __hash__(self):
        return hash((self.schema.attributes, self.tuples))

    def __repr__(self):
        return "Relation(%s/%d, %d tuples)" % (
            self.schema.name,
            self.schema.arity,
            len(self.tuples),
        )

    def pretty(self, limit=20):
        """ASCII table rendering (first ``limit`` rows, sorted)."""
        attrs = self.schema.attributes
        rows = [tuple(str(v) for v in t) for t in self.sorted_tuples()[:limit]]
        widths = [
            max([len(a)] + [len(r[i]) for r in rows])
            for i, a in enumerate(attrs)
        ]
        header = " | ".join(a.ljust(w) for a, w in zip(attrs, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rows
        ]
        extra = len(self.tuples) - len(rows)
        if extra > 0:
            body.append("... (%d more)" % extra)
        return "\n".join([header, sep] + body)


def _sort_key(value):
    """Total order over mixed-type values (type name first, then value)."""
    return (type(value).__name__, repr(value))


def same_content(left, right):
    """Order-insensitive relation equality.

    True when both relations have the same attribute *set* and the same
    tuples once columns are aligned — the right notion when comparing
    results of plans that emit columns in different orders (e.g.
    Yannakakis vs a naive join fold).
    """
    if set(left.schema.attributes) != set(right.schema.attributes):
        return False
    order = sorted(left.schema.attributes)
    return left.project(order) == right.project(order)
