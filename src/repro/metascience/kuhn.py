"""Figure 1: Kuhn's stages of the scientific process, as a state machine.

The figure shows the cycle: (immature science ->) normal science ->
crisis -> revolution -> new paradigm -> normal science.  The executable
version is a stochastic process driven by *anomaly* arrivals:

* during **normal science** anomalies accumulate (the community "sweeps
  them under the rug") until a tolerance threshold tips the field into
  **crisis**;
* during crisis, candidate paradigms compete; one wins with some rate,
  triggering a **revolution**;
* a revolution installs a new paradigm, resets the anomaly count, and
  returns the field to normal science.

The paper's two structural comments are parameters:

* "the stages … are much accelerated in the case of computer science" —
  the ``acceleration`` factor scales all rates;
* the closed loop with a changing artifact shows up as anomaly arrivals
  that *increase* with each paradigm's age (the artifact drifts away
  from the model studying it) when ``artifact_drift`` is set.
"""

from __future__ import annotations

import random

from ..errors import MetascienceError

#: The stages of Figure 1.
IMMATURE, NORMAL, CRISIS, REVOLUTION = (
    "immature science",
    "normal science",
    "crisis",
    "revolution",
)

STAGES = (IMMATURE, NORMAL, CRISIS, REVOLUTION)


class KuhnProcess:
    """A stochastic walk through Kuhn's stages.

    Args:
        anomaly_rate: probability per step of a new anomaly in normal
            science.
        tolerance: anomalies endured before crisis breaks out.
        revolution_rate: per-step probability a competing candidate
            triumphs during crisis.
        maturation_rate: per-step probability immature science acquires
            its first paradigm.
        acceleration: multiplies every rate (the computer-science knob).
        artifact_drift: per-step additive growth of the anomaly rate
            while a paradigm ages (the closed-loop artifact).
        seed: RNG seed.
    """

    def __init__(
        self,
        anomaly_rate=0.15,
        tolerance=5,
        revolution_rate=0.25,
        maturation_rate=0.3,
        acceleration=1.0,
        artifact_drift=0.0,
        seed=0,
    ):
        if acceleration <= 0:
            raise MetascienceError("acceleration must be positive")
        self.base_anomaly_rate = anomaly_rate
        self.tolerance = tolerance
        self.revolution_rate = revolution_rate
        self.maturation_rate = maturation_rate
        self.acceleration = acceleration
        self.artifact_drift = artifact_drift
        self.rng = random.Random(seed)
        self.stage = IMMATURE
        self.anomalies = 0
        self.paradigm = 0
        self.paradigm_age = 0
        self.history = [(0, IMMATURE, 0, 0)]
        self.step_count = 0

    def _rate(self, base):
        return min(base * self.acceleration, 1.0)

    def step(self):
        """Advance one time step; returns the (possibly new) stage."""
        self.step_count += 1
        self.paradigm_age += 1
        if self.stage == IMMATURE:
            if self.rng.random() < self._rate(self.maturation_rate):
                self.paradigm = 1
                self.paradigm_age = 0
                self.stage = NORMAL
        elif self.stage == NORMAL:
            drifted = (
                self.base_anomaly_rate
                + self.artifact_drift * self.paradigm_age
            )
            if self.rng.random() < self._rate(drifted):
                self.anomalies += 1
            if self.anomalies >= self.tolerance:
                self.stage = CRISIS
        elif self.stage == CRISIS:
            if self.rng.random() < self._rate(self.revolution_rate):
                self.stage = REVOLUTION
        elif self.stage == REVOLUTION:
            # The new paradigm takes over immediately.
            self.paradigm += 1
            self.paradigm_age = 0
            self.anomalies = 0
            self.stage = NORMAL
        self.history.append(
            (self.step_count, self.stage, self.anomalies, self.paradigm)
        )
        return self.stage

    def run(self, steps):
        """Advance ``steps`` steps; returns the history."""
        for _ in range(steps):
            self.step()
        return self.history

    # -- analysis ----------------------------------------------------------

    def stage_durations(self):
        """Lengths of each completed contiguous stage episode.

        Returns:
            ``{stage: [durations...]}``.
        """
        durations = {stage: [] for stage in STAGES}
        current_stage = self.history[0][1]
        length = 1
        for _, stage, _, _ in self.history[1:]:
            if stage == current_stage:
                length += 1
            else:
                durations[current_stage].append(length)
                current_stage = stage
                length = 1
        return durations

    def revolutions(self):
        """Number of completed revolutions."""
        return max(self.paradigm - 1, 0)

    def mean_cycle_length(self):
        """Average steps between successive revolutions (None if < 2)."""
        times = [
            t
            for (t, stage, _, _) in self.history
            if stage == REVOLUTION
        ]
        # Collapse consecutive revolution steps into events.
        events = [t for i, t in enumerate(times) if i == 0 or t > times[i - 1] + 1]
        if len(events) < 2:
            return None
        gaps = [b - a for a, b in zip(events, events[1:])]
        return sum(gaps) / len(gaps)


def acceleration_experiment(factors, steps=4000, seed=7):
    """Cycle length vs acceleration (Figure 1's CS-specific comment).

    Returns:
        List of ``(factor, revolutions, mean_cycle_length)`` rows —
        revolutions should increase and cycles shorten as the factor
        grows (asserted by a test).
    """
    rows = []
    for factor in factors:
        process = KuhnProcess(acceleration=factor, seed=seed)
        process.run(steps)
        rows.append(
            (factor, process.revolutions(), process.mean_cycle_length())
        )
    return rows
