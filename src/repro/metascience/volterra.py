"""Lotka–Volterra dynamics: the §6 ecosystem reading of Figure 3.

"Actually the graphs very much recall solutions to Volterra equations for
an isolated ecosystem with very aggressive predators [Sig].  The decline
of the prey brings about the decline of the predator, who then becomes
the prey of the next species."

Three deliverables:

* the classical two-species predator–prey system (RK4 integration) with
  its conserved quantity, used as a numerical-correctness property test;
* the **succession chain** — species i preys on species i-1 — whose
  staggered rise-and-fall waves are the qualitative shape of Figure 3
  (the bench prints them side by side);
* a coarse **fit** of the chain model to the PODS series (peak-order and
  peak-lag comparison, not least squares: the paper's claim is about
  shape, and so is the reproduction's).
"""

from __future__ import annotations

import math

from ..errors import MetascienceError


def lotka_volterra(
    prey0,
    predator0,
    alpha=1.0,
    beta=0.4,
    gamma=1.2,
    delta=0.2,
    dt=0.01,
    steps=5000,
):
    """Integrate the classical predator-prey system with RK4.

    dx/dt = alpha*x - beta*x*y;  dy/dt = delta*x*y - gamma*y.

    Returns:
        ``(xs, ys)`` — prey and predator trajectories (lists, length
        steps+1).
    """
    if prey0 <= 0 or predator0 <= 0:
        raise MetascienceError("populations must start positive")

    def fx(x, y):
        return alpha * x - beta * x * y

    def fy(x, y):
        return delta * x * y - gamma * y

    xs, ys = [prey0], [predator0]
    x, y = prey0, predator0
    for _ in range(steps):
        k1x, k1y = fx(x, y), fy(x, y)
        k2x = fx(x + dt * k1x / 2, y + dt * k1y / 2)
        k2y = fy(x + dt * k1x / 2, y + dt * k1y / 2)
        k3x = fx(x + dt * k2x / 2, y + dt * k2y / 2)
        k3y = fy(x + dt * k2x / 2, y + dt * k2y / 2)
        k4x = fx(x + dt * k3x, y + dt * k3y)
        k4y = fy(x + dt * k3x, y + dt * k3y)
        x += dt * (k1x + 2 * k2x + 2 * k3x + k4x) / 6
        y += dt * (k1y + 2 * k2y + 2 * k3y + k4y) / 6
        xs.append(x)
        ys.append(y)
    return xs, ys


def conserved_quantity(x, y, alpha=1.0, beta=0.4, gamma=1.2, delta=0.2):
    """The LV invariant V = delta*x - gamma*ln x + beta*y - alpha*ln y.

    Constant along exact trajectories; the RK4 property test checks it
    drifts by < 0.1% over a full cycle.
    """
    return delta * x - gamma * math.log(x) + beta * y - alpha * math.log(y)


def succession_chain(
    n_species=4,
    growth=1.2,
    predation=0.8,
    conversion=0.6,
    death=0.5,
    dt=0.01,
    steps=8000,
    initial=None,
):
    """A food chain where species i preys on species i-1.

    Species 0 grows logistic-free on an external resource; every species
    i > 0 feeds on its predecessor and dies otherwise.  The staggered
    peaks — each species rises as its prey peaks, then collapses after
    consuming it — are the ecosystem succession §6 sees in Figure 3.

    Returns:
        A list of n_species trajectories.
    """
    if n_species < 2:
        raise MetascienceError("a chain needs at least two species")
    populations = list(
        initial
        if initial is not None
        else [1.0] + [0.2 * (0.5 ** i) for i in range(n_species - 1)]
    )
    if len(populations) != n_species:
        raise MetascienceError("initial must have n_species entries")
    histories = [[p] for p in populations]

    def derivatives(pop):
        d = [0.0] * n_species
        d[0] = growth * pop[0] - predation * pop[0] * pop[1]
        for i in range(1, n_species):
            gain = conversion * pop[i - 1] * pop[i]
            loss = death * pop[i]
            eaten = predation * pop[i] * pop[i + 1] if i + 1 < n_species else 0.0
            d[i] = gain - loss - eaten
        return d

    pop = populations
    for _ in range(steps):
        k1 = derivatives(pop)
        mid1 = [p + dt * k / 2 for p, k in zip(pop, k1)]
        k2 = derivatives(mid1)
        mid2 = [p + dt * k / 2 for p, k in zip(pop, k2)]
        k3 = derivatives(mid2)
        end = [p + dt * k for p, k in zip(pop, k3)]
        k4 = derivatives(end)
        pop = [
            max(p + dt * (a + 2 * b + 2 * c + d) / 6, 1e-9)
            for p, a, b, c, d in zip(pop, k1, k2, k3, k4)
        ]
        for history, value in zip(histories, pop):
            history.append(value)
    return histories


def peak_times(histories):
    """Index of each species' maximum (the succession signature)."""
    return [max(range(len(h)), key=lambda i: h[i]) for h in histories]


def first_peak_times(histories, rise_factor=1.5):
    """Index of each species' *first* local maximum after a real rise.

    LV trajectories cycle, so the global maximum is a poor succession
    marker; the first peak is the wave Figure 3's curves correspond to.
    Species that never rise by ``rise_factor`` over their start get None.
    """
    out = []
    for history in histories:
        base = history[0]
        found = None
        for i in range(1, len(history) - 1):
            rose = history[i] > base * rise_factor
            local_max = history[i] >= history[i - 1] and history[i] > history[i + 1]
            if rose and local_max:
                found = i
                break
        out.append(found)
    return out


def resample(history, points):
    """Downsample a trajectory to ``points`` evenly spaced values."""
    n = len(history)
    return [
        history[min(int(i * (n - 1) / (points - 1)), n - 1)]
        for i in range(points)
    ]


def shape_similarity(model_series, data_series):
    """Pearson correlation between a model curve and a data series.

    The "fit" metric for the §6 claim: we compare *shapes* (correlation),
    not absolute counts.
    """
    if len(model_series) != len(data_series):
        raise MetascienceError("series must have equal length")
    n = len(model_series)
    mean_m = sum(model_series) / n
    mean_d = sum(data_series) / n
    cov = sum(
        (m - mean_m) * (d - mean_d)
        for m, d in zip(model_series, data_series)
    )
    var_m = math.sqrt(sum((m - mean_m) ** 2 for m in model_series))
    var_d = math.sqrt(sum((d - mean_d) ** 2 for d in data_series))
    if var_m == 0 or var_d == 0:
        return 0.0
    return cov / (var_m * var_d)


def best_lag_similarity(history, series, samples=200):
    """Maximum correlation of ``series`` against windows of a trajectory.

    The trajectory is downsampled to ``samples`` points, then every
    contiguous window of ``len(series)`` points is compared; the best
    correlation (and its offset) is returned.  This is the honest "shape
    fit": the model's clock and the conference calendar need aligning,
    nothing more.
    """
    coarse = resample(history, samples)
    window = len(series)
    if window > samples:
        raise MetascienceError("series longer than sampled trajectory")
    best = (-1.0, 0)
    for offset in range(samples - window + 1):
        corr = shape_similarity(coarse[offset:offset + window], list(series))
        if corr > best[0]:
            best = (corr, offset)
    return best


def succession_fit(data_by_area):
    """Match succession-chain species to PODS areas by peak order.

    Args:
        data_by_area: ``{area: smoothed series}`` in succession (peak
            year) order — species k of the chain is matched to the k-th
            area to peak.

    Returns:
        ``{area: best-lag correlation}`` — the quantitative version of
        "the graphs very much recall solutions to Volterra equations".
    """
    n_species = len(data_by_area)
    histories = succession_chain(n_species=max(n_species, 2))
    out = {}
    for (area, series), history in zip(data_by_area.items(), histories):
        corr, _offset = best_lag_similarity(history, list(series))
        out[area] = corr
    return out
