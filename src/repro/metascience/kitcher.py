"""Kitcher's diversity model (footnote 11).

"Natural scientists are known to hold on to paradigms even after they
have been undeniably falsified; Philip Kitcher uses a simple population
genetics model to argue that such diversity is beneficial and
inevitable."

The model: a community of researchers distributes itself over competing
research traditions.  Each tradition's *payoff to a member* decreases
with how crowded it is (credit is shared), so the community equilibrates
at a mixed distribution even when one tradition is intrinsically better —
diversity is the *rational* outcome, not a failure of rationality.

Implemented as discrete replicator dynamics; the tests check the two
regime results:

* frequency-dependent payoffs (``sharing > 0``) -> interior equilibrium,
  diversity persists;
* frequency-independent payoffs (``sharing = 0``) -> the best tradition
  absorbs everyone, diversity collapses.
"""

from __future__ import annotations

import math

from ..errors import MetascienceError


def payoff(quality, share, sharing=1.0):
    """Per-member payoff of a tradition: quality diluted by crowding.

    ``quality * share**(-sharing)`` in spirit; implemented as
    ``quality / (share ** sharing)`` with a floor to avoid division blowup.
    ``sharing=0`` turns dilution off (winner-takes-all regime).
    """
    share = max(share, 1e-9)
    return quality / (share ** sharing)


def replicator_step(shares, qualities, sharing=1.0, rate=0.5):
    """One discrete replicator update.

    Shares grow in proportion to payoff advantage over the mean:
    s_i' = s_i * (1 + rate * (p_i - mean) / mean), renormalized.
    """
    payoffs = [
        payoff(q, s, sharing) for q, s in zip(qualities, shares)
    ]
    mean = sum(p * s for p, s in zip(payoffs, shares))
    if mean <= 0:
        raise MetascienceError("degenerate payoffs")
    updated = [
        max(s * (1.0 + rate * (p - mean) / mean), 0.0)
        for s, p in zip(shares, payoffs)
    ]
    total = sum(updated)
    return [u / total for u in updated]


def equilibrate(qualities, sharing=1.0, rate=0.5, steps=2000, initial=None):
    """Run the dynamics to (near) equilibrium.

    Returns:
        The final share vector.
    """
    n = len(qualities)
    if n < 2:
        raise MetascienceError("need at least two traditions")
    shares = list(initial) if initial is not None else [1.0 / n] * n
    if abs(sum(shares) - 1.0) > 1e-9:
        raise MetascienceError("initial shares must sum to 1")
    for _ in range(steps):
        shares = replicator_step(shares, qualities, sharing, rate)
    return shares


def predicted_equilibrium(qualities, sharing=1.0):
    """The analytic interior equilibrium for ``sharing=1``.

    With payoff q_i / s_i, equal payoffs mean s_i ∝ q_i: the community
    splits *proportionally to quality* — diversity exactly mirrors merit.
    For general sharing γ, s_i ∝ q_i^(1/γ).
    """
    if sharing <= 0:
        raise MetascienceError(
            "no interior equilibrium without payoff sharing"
        )
    weights = [q ** (1.0 / sharing) for q in qualities]
    total = sum(weights)
    return [w / total for w in weights]


def diversity_index(shares):
    """Shannon entropy of the share vector (0 = monoculture)."""
    return -sum(s * math.log(s) for s in shares if s > 0)


def diversity_experiment(qualities, sharings=(0.0, 0.5, 1.0)):
    """Equilibrium diversity as payoff sharing varies (the footnote's
    claim: sharing sustains diversity).

    Returns:
        List of ``(sharing, shares, diversity)`` rows.
    """
    rows = []
    for sharing in sharings:
        if sharing == 0.0:
            # Winner-takes-all needs a long horizon and a nudge off the
            # symmetric point to converge.
            n = len(qualities)
            initial = [1.0 / n] * n
            best = max(range(n), key=lambda i: qualities[i])
            initial = [
                s + (0.01 if i == best else -0.01 / (n - 1))
                for i, s in enumerate(initial)
            ]
            shares = equilibrate(
                qualities, sharing=0.0, steps=5000, initial=initial
            )
        else:
            shares = equilibrate(qualities, sharing=sharing)
        rows.append((sharing, shares, diversity_index(shares)))
    return rows
