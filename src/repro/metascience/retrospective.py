"""The PODS retrospective: Figure 3's series and the §6 shape analysis.

Reconstructs exactly what the figure plots — "averages for the two-year
period ending in the year indicated" — plus the analytical observations
the section makes about the curves: which tradition dominates when, the
rise-and-fall succession, peak years, and the invited-talk/maximum-
derivative coincidence of footnote 9.
"""

from __future__ import annotations

from .pods_data import AREAS, RAW_COUNTS, YEARS


def two_year_average(counts):
    """Trailing two-year averages: value[y] = (raw[y-1] + raw[y]) / 2.

    The first year has no predecessor and is dropped, matching a figure
    whose x-axis starts at the second conference.
    """
    counts = list(counts)
    return [
        (counts[i - 1] + counts[i]) / 2.0 for i in range(1, len(counts))
    ]


def figure3_series(area=None):
    """The plotted series: ``{area: [(year, smoothed), ...]}``.

    Args:
        area: one area key, or None for all five.
    """
    areas = (area,) if area else AREAS
    out = {}
    for key in areas:
        smoothed = two_year_average(RAW_COUNTS[key])
        out[key] = list(zip(YEARS[1:], smoothed))
    return out if area is None else out[area]


def figure3_table():
    """Figure 3 as rows: (year, v1..v5) per area order, for printing."""
    data = figure3_series()
    rows = []
    for i, year in enumerate(YEARS[1:]):
        rows.append(
            (year,) + tuple(round(data[a][i][1], 1) for a in AREAS)
        )
    return rows


def render_figure3():
    """ASCII rendering of the Figure 3 table (the bench's output)."""
    header = ("year",) + AREAS
    rows = figure3_table()
    widths = [
        max(len(str(header[i])), max(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shape analysis (the claims of §6, as predicates)
# ---------------------------------------------------------------------------


def dominant_area(year):
    """The area with the most papers in a given raw year."""
    index = YEARS.index(year)
    return max(AREAS, key=lambda a: RAW_COUNTS[a][index])


def peak_year(area, smoothed=True):
    """Year of the (two-year-averaged by default) maximum."""
    if smoothed:
        values = two_year_average(RAW_COUNTS[area])
        years = YEARS[1:]
    else:
        values = RAW_COUNTS[area]
        years = YEARS
    best = max(range(len(values)), key=lambda i: values[i])
    return years[best]


def is_waning(area, window=3):
    """Strictly declining two-year average over the last ``window`` points."""
    values = two_year_average(RAW_COUNTS[area])
    tail = values[-window:]
    return all(tail[i] > tail[i + 1] for i in range(len(tail) - 1))


def max_derivative_year(area):
    """Year of the largest single-year increase (footnote 9's statistic:
    invited talks "coincide … with the maximum derivative in the volume
    of the corresponding area")."""
    counts = RAW_COUNTS[area]
    best = max(
        range(1, len(counts)), key=lambda i: counts[i] - counts[i - 1]
    )
    return YEARS[best]


def succession_order():
    """Areas by (smoothed) peak year — the ecosystem succession of §6."""
    return sorted(AREAS, key=peak_year)


def trend(area):
    """Coarse trend label over the full period: rising/declining/flat.

    Compares the first and last thirds of the smoothed series.
    """
    values = two_year_average(RAW_COUNTS[area])
    third = max(len(values) // 3, 1)
    early = sum(values[:third]) / third
    late = sum(values[-third:]) / third
    if late > early * 1.5:
        return "rising"
    if early > late * 1.5:
        return "declining"
    return "flat"
