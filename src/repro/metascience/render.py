"""ASCII renderings of the paper's figures.

The originals are print diagrams; these renderers regenerate them from
the executable models so examples and benches can show, not just
summarize.  (Figure 3's tabular renderer lives in ``retrospective``.)
"""

from __future__ import annotations

from .kuhn import CRISIS, IMMATURE, NORMAL, REVOLUTION

_STAGE_GLYPH = {
    IMMATURE: ".",
    NORMAL: "=",
    CRISIS: "!",
    REVOLUTION: "^",
}


def render_figure1(process, width=72):
    """Figure 1 as a stage timeline plus the cycle diagram.

    Args:
        process: a run :class:`~repro.metascience.kuhn.KuhnProcess`.
        width: characters per timeline row.

    The glyphs: ``.`` immature science, ``=`` normal science,
    ``!`` crisis, ``^`` revolution.
    """
    glyphs = "".join(
        _STAGE_GLYPH[stage] for _t, stage, _a, _p in process.history
    )
    lines = [
        "Figure 1: the stages of the scientific process (Kuhn)",
        "",
        "  immature science --> normal science --> crisis --> revolution",
        "                            ^                            |",
        "                            +---- new paradigm <---------+",
        "",
        "timeline (. immature, = normal, ! crisis, ^ revolution):",
    ]
    for start in range(0, len(glyphs), width):
        lines.append("  " + glyphs[start:start + width])
    lines.append(
        "revolutions: %d; mean cycle: %s steps"
        % (
            process.revolutions(),
            (
                "%.1f" % process.mean_cycle_length()
                if process.mean_cycle_length()
                else "n/a"
            ),
        )
    )
    return "\n".join(lines)


def render_figure2(graph, buckets=10, width=50):
    """Figure 2 as a level histogram plus the health report.

    Shows how research units distribute over the practical<->theoretical
    spectrum and the graph's global statistics — the textual analogue of
    the paper's two snapshots.
    """
    counts = [0] * buckets
    for unit in graph.units:
        index = min(int(unit.level * buckets), buckets - 1)
        counts[index] += 1
    top = max(counts) if counts else 1
    lines = ["practice  <-  theory-level spectrum  ->  theory"]
    for i, count in enumerate(counts):
        bar = "#" * int(width * count / top)
        lines.append(
            "%4.1f-%4.1f |%s (%d)"
            % (i / buckets, (i + 1) / buckets, bar, count)
        )
    report = graph.health_report()
    lines.append("")
    for metric, value in report.items():
        lines.append("%-34s %s" % (metric, value))
    return "\n".join(lines)
