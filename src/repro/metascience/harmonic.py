"""The two-year harmonic and the program-committee memory model.

Footnote 10: single-year PODS data is "too jerky to display, mostly
because of a strong two-year harmonic … What has a one-year memory in
science?  Program committees!  I think we are seeing here the work of
committees trying to correct 'excesses' … of the previous committee."

Two deliverables:

* **Detection** — a small discrete Fourier analysis that measures how
  much of a series' (detrended) power sits at period 2; the tests check
  the transaction-processing and logic-database series light up and the
  smooth complex-objects series does not.
* **The PC model** — an over-correcting AR(1) process
  ``x[t+1] = target - correction * (x[t] - target) + drift`` whose
  over-correction (``correction > 0``) provably flips sign each year,
  generating exactly the alternation the footnote theorizes.
"""

from __future__ import annotations

import cmath
import math


def detrend(values):
    """Remove the least-squares line (so the DFT sees oscillation only)."""
    n = len(values)
    if n < 2:
        return [0.0] * n
    xs = range(n)
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, values))
    var = sum((x - mean_x) ** 2 for x in xs)
    slope = cov / var if var else 0.0
    return [
        y - (mean_y + slope * (x - mean_x)) for x, y in zip(xs, values)
    ]


def dft_power(values):
    """Power spectrum of a real series: ``{frequency_index: power}``.

    Frequency index k corresponds to period n/k; the Nyquist bin
    (k = n/2, period 2) is where a two-year harmonic lives.
    """
    n = len(values)
    spectrum = {}
    for k in range(1, n // 2 + 1):
        coefficient = sum(
            v * cmath.exp(-2j * math.pi * k * t / n)
            for t, v in enumerate(values)
        )
        spectrum[k] = abs(coefficient) ** 2
    return spectrum


def two_year_harmonic_strength(values):
    """Fraction of non-DC power at period 2 (0 = none, 1 = pure).

    The series is detrended first, so a declining-but-alternating series
    (transaction processing) still scores high.
    """
    detrended = detrend(list(values))
    spectrum = dft_power(detrended)
    total = sum(spectrum.values())
    if total == 0:
        return 0.0
    nyquist = len(detrended) // 2
    return spectrum.get(nyquist, 0.0) / total


def has_two_year_harmonic(values, threshold=0.25):
    """Does at least ``threshold`` of the oscillatory power sit at period 2?"""
    return two_year_harmonic_strength(values) >= threshold


def alternation_score(values):
    """Fraction of consecutive first differences that flip sign.

    A model-free cross-check of the same phenomenon (1.0 = perfectly
    zigzag, 0.0 = monotone).
    """
    diffs = [b - a for a, b in zip(values, values[1:])]
    diffs = [d for d in diffs if d != 0]
    if len(diffs) < 2:
        return 0.0
    flips = sum(
        1 for a, b in zip(diffs, diffs[1:]) if (a > 0) != (b > 0)
    )
    return flips / (len(diffs) - 1)


def pc_memory_series(
    target=10.0, correction=0.8, start=16.0, years=14, drift=0.0
):
    """Simulate footnote 10's program-committee dynamics.

    Each committee sees only last year's count and over-corrects toward
    the (possibly drifting) target:

        x[t+1] = target[t] - correction * (x[t] - target[t])

    With ``correction`` in (0, 1] the deviation flips sign every year and
    shrinks geometrically: a damped two-year oscillation riding on the
    target trend — footnote 10's theory, executable.

    Args:
        drift: per-year change of the target (negative = declining area).

    Returns:
        The simulated yearly series (floats).
    """
    series = [start]
    current_target = target
    for _ in range(years - 1):
        nxt = current_target - correction * (series[-1] - current_target)
        series.append(nxt)
        current_target += drift
    return series
