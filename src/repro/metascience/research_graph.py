"""Figure 2: applied science as a graph of research units.

The paper's model: research units (researchers, papers, groups, results)
sit on a practical<->theoretical spectrum and influence each other.  In
*normal* applied science the graph has "a giant component (in fact, one
with reasonably small diameter) that spans most of the
practical-theoretical spectrum … most of theory is within a few hops from
practice".  In *crisis*, the local statistics look the same ("say, the
average degree is the same as before") but "connectivity is low.
Tangents and introverted components are the rule.  The little
connectivity that exists is via long paths."

The generator realizes both regimes with the *same expected degree*:

* **healthy** — Erdős–Rényi mixing: any two units may connect;
* **crisis** — assortative mixing: units connect only within a narrow
  band of their own theory level (theoreticians "iterate posing and
  answering their own questions").

Metrics (the figure's visual claims, quantified): giant-component
fraction, giant-component diameter, mean theory->practice distance, and
an introversion index.
"""

from __future__ import annotations

import random

from ..errors import MetascienceError


class ResearchUnit:
    """One node: an id and a theory level in [0, 1] (0 = product, 1 = pure)."""

    __slots__ = ("uid", "level")

    def __init__(self, uid, level):
        if not 0.0 <= level <= 1.0:
            raise MetascienceError("theory level must lie in [0, 1]")
        self.uid = uid
        self.level = level

    def __repr__(self):
        return "ResearchUnit(%d, %.2f)" % (self.uid, self.level)


class ResearchGraph:
    """An undirected influence graph over research units."""

    __slots__ = ("units", "adjacency")

    def __init__(self, units, edges):
        self.units = list(units)
        self.adjacency = {unit.uid: set() for unit in self.units}
        for a, b in edges:
            if a == b:
                continue
            self.adjacency[a].add(b)
            self.adjacency[b].add(a)

    # -- generation ---------------------------------------------------------

    @classmethod
    def generate(cls, n=400, average_degree=4.0, regime="healthy",
                 band=0.12, seed=0):
        """Generate a graph in one of the two regimes of Figure 2.

        Args:
            n: number of research units.
            average_degree: target mean degree (matched across regimes —
                the paper's "average degree is the same as before").
            regime: "healthy" (uniform mixing) or "crisis" (mixing only
                within ``band`` of one's own theory level).
            band: half-width of the crisis mixing band.
            seed: RNG seed.
        """
        rng = random.Random(seed)
        units = [ResearchUnit(i, rng.random()) for i in range(n)]
        if regime == "healthy":
            eligible = [
                (a.uid, b.uid)
                for i, a in enumerate(units)
                for b in units[i + 1:]
            ]
        elif regime == "crisis":
            eligible = [
                (a.uid, b.uid)
                for i, a in enumerate(units)
                for b in units[i + 1:]
                if abs(a.level - b.level) <= band
            ]
        else:
            raise MetascienceError(
                "regime must be 'healthy' or 'crisis', got %r" % (regime,)
            )
        if not eligible:
            return cls(units, [])
        target_edges = int(n * average_degree / 2)
        probability = min(target_edges / len(eligible), 1.0)
        edges = [pair for pair in eligible if rng.random() < probability]
        return cls(units, edges)

    # -- basic stats ------------------------------------------------------------

    def average_degree(self):
        if not self.units:
            return 0.0
        return sum(len(v) for v in self.adjacency.values()) / len(self.units)

    def components(self):
        """Connected components as lists of uids."""
        seen = set()
        out = []
        for unit in self.units:
            if unit.uid in seen:
                continue
            component = []
            frontier = [unit.uid]
            seen.add(unit.uid)
            while frontier:
                node = frontier.pop()
                component.append(node)
                for neighbor in self.adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            out.append(component)
        return sorted(out, key=len, reverse=True)

    def giant_component_fraction(self):
        components = self.components()
        if not components:
            return 0.0
        return len(components[0]) / len(self.units)

    def _bfs_distances(self, source, allowed=None):
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in self.adjacency[node]:
                    if allowed is not None and neighbor not in allowed:
                        continue
                    if neighbor not in distances:
                        distances[neighbor] = distances[node] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def giant_diameter(self, sample=40, seed=0):
        """Approximate diameter of the giant component (BFS from a sample)."""
        giant = self.components()[0] if self.units else []
        if len(giant) <= 1:
            return 0
        rng = random.Random(seed)
        sources = giant if len(giant) <= sample else rng.sample(giant, sample)
        allowed = set(giant)
        diameter = 0
        for source in sources:
            distances = self._bfs_distances(source, allowed)
            diameter = max(diameter, max(distances.values()))
        return diameter

    def theory_practice_distance(
        self, practice_cut=0.2, theory_cut=0.8
    ):
        """Mean hops from each theory unit to the nearest practice unit.

        Unreachable pairs contribute ``float('inf')`` — crisis graphs
        typically have many; the summary uses the *median* to stay
        meaningful, and also reports the unreachable fraction.

        Returns:
            ``(median_distance, unreachable_fraction)``.
        """
        practice = {
            u.uid for u in self.units if u.level <= practice_cut
        }
        theory = [u.uid for u in self.units if u.level >= theory_cut]
        if not practice or not theory:
            return float("inf"), 1.0
        distances = []
        unreachable = 0
        for source in theory:
            found = self._bfs_distances(source)
            best = min(
                (d for node, d in found.items() if node in practice),
                default=None,
            )
            if best is None:
                unreachable += 1
                distances.append(float("inf"))
            else:
                distances.append(best)
        distances.sort()
        median = distances[len(distances) // 2]
        return median, unreachable / len(theory)

    def introversion_index(self, spread=0.5):
        """Fraction of units in components that do not span the spectrum.

        A component "spans" when its theory levels cover at least
        ``spread`` of [0, 1]; everything else is a tangent or an
        introverted product — the crisis signature.
        """
        level_of = {u.uid: u.level for u in self.units}
        introverted = 0
        for component in self.components():
            levels = [level_of[uid] for uid in component]
            if max(levels) - min(levels) < spread:
                introverted += len(component)
        return introverted / len(self.units) if self.units else 0.0

    def health_report(self):
        """All Figure 2 metrics in one dict (the bench's row)."""
        median_distance, unreachable = self.theory_practice_distance()
        return {
            "units": len(self.units),
            "average_degree": round(self.average_degree(), 2),
            "giant_fraction": round(self.giant_component_fraction(), 3),
            "giant_diameter": self.giant_diameter(),
            "theory_practice_median_distance": median_distance,
            "theory_practice_unreachable": round(unreachable, 3),
            "introversion_index": round(self.introversion_index(), 3),
        }

    def __repr__(self):
        return "ResearchGraph(%d units, %d edges)" % (
            len(self.units),
            sum(len(v) for v in self.adjacency.values()) // 2,
        )


def figure2_comparison(n=400, average_degree=4.0, seed=0):
    """Generate both regimes at matched degree; return their reports."""
    healthy = ResearchGraph.generate(
        n=n, average_degree=average_degree, regime="healthy", seed=seed
    )
    crisis = ResearchGraph.generate(
        n=n, average_degree=average_degree, regime="crisis", seed=seed
    )
    return {
        "healthy": healthy.health_report(),
        "crisis": crisis.health_report(),
    }
