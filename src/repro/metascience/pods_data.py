"""The PODS 1982-1995 five-area paper-count dataset (Figure 3's input).

The paper plots "the number of PODS papers in five areas, averages for
the two-year period ending in the year indicated" but prints only some of
the underlying numbers.  This module is the reproduction's substitute for
the hand-classified proceedings (documented in DESIGN.md): a synthetic
yearly series per area, **anchored on every quantitative and qualitative
statement in the text**, with the gaps filled by hand consistently with
those statements.  The anchors, each checked by a test:

* Logic Databases, raw single-year series 1986-1992:
  10, 14, 9, 18, 13, 16, 14 (footnote 10, quoted verbatim).
* "In the first conference with a significant presence of this topic
  (1986) there was a block of ten papers, and the number increased to
  fourteen the following year."
* Before 1986 the topic had only "timid and scattered representation".
* Logic databases is "by far the largest in terms of volume", yet
  "now shows definite signs of waning" (declining two-year average at
  the end).
* 1982-83: "two major research traditions were dominant, almost to the
  exclusion of anything else" — relational theory and transaction
  processing.
* Transaction processing declines with a "strong two-year harmonic"
  (footnote 10 again: "this bizarre phenomenon is also present in the
  decline of transaction processing").
* Data structures and access methods keep "the modest presence they
  would maintain throughout the fourteen years".
* Complex objects (non-flat models -> OO/spatial/constraint) grow into
  "the currently important category".
"""

from __future__ import annotations

#: The fourteen PODS years the paper reviews.
YEARS = tuple(range(1982, 1996))

#: Area keys, in the order used throughout the package.
AREAS = (
    "relational_theory",
    "transaction_processing",
    "logic_databases",
    "complex_objects",
    "access_methods",
)

#: Human-readable labels (as the figure legend would show).
AREA_LABELS = {
    "relational_theory": "Relational theory",
    "transaction_processing": "Transaction processing",
    "logic_databases": "Logic databases",
    "complex_objects": "Complex objects",
    "access_methods": "Data structures & access methods",
}

#: Raw single-year paper counts, 1982..1995.
RAW_COUNTS = {
    "relational_theory": (16, 14, 12, 11, 9, 10, 7, 8, 5, 6, 4, 5, 3, 4),
    "transaction_processing": (13, 9, 11, 7, 9, 5, 7, 4, 5, 3, 4, 2, 3, 2),
    "logic_databases": (1, 2, 2, 4, 10, 14, 9, 18, 13, 16, 14, 10, 8, 6),
    "complex_objects": (1, 1, 2, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13),
    "access_methods": (3, 2, 3, 4, 3, 2, 3, 3, 4, 3, 3, 4, 3, 4),
}

#: The verbatim footnote-10 anchor: Logic Databases, 1986..1992.
LOGIC_DB_ANCHOR = (10, 14, 9, 18, 13, 16, 14)


def series(area):
    """The raw yearly series of one area, as a (year, count) list."""
    counts = RAW_COUNTS[area]
    return list(zip(YEARS, counts))


def counts(area):
    """Just the counts tuple of one area."""
    return RAW_COUNTS[area]


def year_index(year):
    """Index of a year in :data:`YEARS`."""
    return YEARS.index(year)


def totals():
    """Total papers per area over all fourteen years."""
    return {area: sum(RAW_COUNTS[area]) for area in AREAS}


def dataset():
    """The full dataset as ``{area: [(year, count), ...]}``."""
    return {area: series(area) for area in AREAS}
