"""A DPLL SAT solver.

Cook's Theorem, "seen as a result in the study of algorithms for
satisfiability, is a definite setback" — but SAT still gets solved.  This
is the classical Davis–Putnam–Logemann–Loveland procedure with unit
propagation and pure-literal elimination, sufficient to discharge the
Cook-reduction instances of the benchmarks and to solve modest random
3-SAT.
"""

from __future__ import annotations


class DPLLResult:
    """Outcome of a solver run.

    Attributes:
        assignment: ``{var: bool}`` model, or None when UNSAT.
        decisions: number of branching decisions made.
        propagations: number of unit propagations performed.
    """

    __slots__ = ("assignment", "decisions", "propagations")

    def __init__(self, assignment, decisions, propagations):
        self.assignment = assignment
        self.decisions = decisions
        self.propagations = propagations

    @property
    def satisfiable(self):
        return self.assignment is not None

    def __repr__(self):
        return "DPLLResult(sat=%s, decisions=%d, propagations=%d)" % (
            self.satisfiable,
            self.decisions,
            self.propagations,
        )


def solve(cnf):
    """Run DPLL on a :class:`~repro.complexity.boolean.CNF`.

    Returns:
        A :class:`DPLLResult`; when satisfiable, the assignment is total
        (unconstrained variables default to False).
    """
    stats = {"decisions": 0, "propagations": 0}
    clauses = [frozenset(c) for c in cnf.clauses]
    model = _dpll(clauses, {}, stats)
    if model is None:
        return DPLLResult(None, stats["decisions"], stats["propagations"])
    assignment = {v: model.get(v, False) for v in range(1, cnf.num_vars + 1)}
    return DPLLResult(assignment, stats["decisions"], stats["propagations"])


def _simplify(clauses, literal):
    """Assign a literal true: drop satisfied clauses, shrink the rest.

    Returns None on an empty (falsified) clause.
    """
    out = []
    for clause in clauses:
        if literal in clause:
            continue
        if -literal in clause:
            reduced = clause - {-literal}
            if not reduced:
                return None
            out.append(reduced)
        else:
            out.append(clause)
    return out


def _dpll(clauses, assignment, stats):
    # Unit propagation.
    while True:
        unit = next((c for c in clauses if len(c) == 1), None)
        if unit is None:
            break
        literal = next(iter(unit))
        stats["propagations"] += 1
        assignment = dict(assignment)
        assignment[abs(literal)] = literal > 0
        clauses = _simplify(clauses, literal)
        if clauses is None:
            return None
    # Pure literal elimination.
    polarity = {}
    for clause in clauses:
        for literal in clause:
            var = abs(literal)
            polarity[var] = (
                literal if var not in polarity
                else (polarity[var] if polarity[var] == literal else 0)
            )
    pures = [lit for lit in polarity.values() if lit != 0]
    if pures:
        assignment = dict(assignment)
        for literal in pures:
            assignment[abs(literal)] = literal > 0
            simplified = _simplify(clauses, literal)
            if simplified is None:  # cannot happen for pure literals
                return None
            clauses = simplified
    if not clauses:
        return assignment
    # Branch on the first literal of the shortest clause.
    stats["decisions"] += 1
    shortest = min(clauses, key=len)
    literal = next(iter(shortest))
    for choice in (literal, -literal):
        simplified = _simplify(clauses, choice)
        if simplified is None:
            continue
        extended = dict(assignment)
        extended[abs(choice)] = choice > 0
        model = _dpll(simplified, extended, stats)
        if model is not None:
            return model
    return None


def is_satisfiable(cnf):
    """Convenience: just the boolean answer."""
    return solve(cnf).satisfiable
