"""The Cook/Fagin connection: SAT, NTMs, ESO, and complexity measures."""

from .boolean import CNF, random_3sat
from .cook import CookReduction, accepts_via_sat, cook_reduction
from .fagin import (
    ESOSentence,
    check,
    graph_database,
    is_three_colorable,
    three_colorability_sentence,
    three_colorable_via_fagin,
)
from .machines import (
    BLANK,
    LEFT,
    NTM,
    RIGHT,
    STAY,
    accepts,
    machine_contains_one,
    machine_guess_equal_ends,
)
from .measures import (
    chain_database,
    combined_complexity_curve,
    data_complexity_curve,
    growth_ratio,
    kpath_query,
)
from .sat import DPLLResult, is_satisfiable, solve

__all__ = [
    "BLANK",
    "CNF",
    "CookReduction",
    "DPLLResult",
    "ESOSentence",
    "LEFT",
    "NTM",
    "RIGHT",
    "STAY",
    "accepts",
    "accepts_via_sat",
    "chain_database",
    "check",
    "combined_complexity_curve",
    "cook_reduction",
    "data_complexity_curve",
    "graph_database",
    "growth_ratio",
    "is_satisfiable",
    "is_three_colorable",
    "kpath_query",
    "machine_contains_one",
    "machine_guess_equal_ends",
    "random_3sat",
    "solve",
    "three_colorability_sentence",
    "three_colorable_via_fagin",
]
