"""Fagin's Theorem, executably: existential second-order logic and NP.

Fagin "makes such a connection between computation and logic even more
directly" (§3): a property of finite structures is NP iff it is definable
in existential second-order logic.  This module implements the logic side
over the library's own relational substrate:

* an :class:`ESOSentence` — guessed relation symbols with arities plus a
  first-order matrix (a :mod:`repro.relational.calculus` formula);
* :func:`check` — model checking by enumerating guessed relations
  (exponential, as NP-hardness demands of an exact checker) and deferring
  to the calculus evaluator for the FO matrix;
* the canonical example: **3-colorability** as an ESO sentence, tested
  against a direct backtracking colorer on random graphs.
"""

from __future__ import annotations

import itertools

from ..errors import ComplexityError
from ..relational.calculus import constants_of, satisfies
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import RelationSchema


class ESOSentence:
    """``exists S1 ... Sk . phi`` over finite structures.

    Args:
        guessed: ``{relation_name: arity}`` for the second-order
            existentials.
        matrix: a sentence (no free variables) from
            :mod:`repro.relational.calculus`, which may mention both the
            structure's relations and the guessed ones.
    """

    __slots__ = ("guessed", "matrix")

    def __init__(self, guessed, matrix):
        self.guessed = dict(guessed)
        if matrix.free_variables():
            raise ComplexityError(
                "the FO matrix must be a sentence; free: %s"
                % sorted(matrix.free_variables())
            )
        self.matrix = matrix

    def __repr__(self):
        quantifier = " ".join(
            "%s/%d" % (name, arity)
            for name, arity in sorted(self.guessed.items())
        )
        return "ESOSentence(exists %s . %s)" % (quantifier, self.matrix)


def _all_relations(name, arity, domain):
    """Every relation of the given arity over ``domain`` (2^(n^k) many)."""
    universe = list(itertools.product(domain, repeat=arity))
    schema = RelationSchema(name, tuple("c%d" % i for i in range(arity)))
    for bits in itertools.product((False, True), repeat=len(universe)):
        tuples = [tup for tup, bit in zip(universe, bits) if bit]
        yield Relation(schema, tuples, validate=False)


def check(sentence, db, domain=None, witness=False):
    """Model-check an ESO sentence on a finite structure.

    Args:
        sentence: the :class:`ESOSentence`.
        db: the structure, as a :class:`~repro.relational.database.Database`.
        domain: the structure's universe (defaults to active domain plus
            the sentence's constants).
        witness: also return the guessed relations on success.

    Returns:
        bool, or ``(bool, {name: Relation} | None)`` when ``witness``.

    The enumeration over guessed relations is doubly exponential-feeling
    and proudly so — Fagin's Theorem is precisely why no cheap exact
    shortcut exists.
    """
    if domain is None:
        domain = db.active_domain() | constants_of(sentence.matrix)
    domain = sorted(domain, key=repr)
    names = sorted(sentence.guessed)
    generators = [
        _all_relations(name, sentence.guessed[name], domain) for name in names
    ]
    for relations in itertools.product(*generators):
        extended = db.copy()
        for relation in relations:
            extended.replace(relation)
        if satisfies(sentence.matrix, {}, extended, set(domain)):
            if witness:
                return True, dict(zip(names, relations))
            return True
    if witness:
        return False, None
    return False


# ---------------------------------------------------------------------------
# The canonical NP property: 3-colorability
# ---------------------------------------------------------------------------


def three_colorability_sentence():
    """3-colorability of a graph ``edge(x, y)``, as an ESO sentence.

    exists R, G, B:
      every vertex has a color, colors are exclusive, and no edge is
      monochromatic.  Vertices are read off the edge relation, so the
      sentence applies to any loop-free graph structure.
    """
    from ..relational.calculus import (
        AndF,
        Exists,
        Forall,
        Implies,
        NotF,
        OrF,
        RelAtom,
        Var,
    )

    def vertex(var):
        return OrF(
            Exists("w1", RelAtom("edge", [Var(var), Var("w1")])),
            Exists("w2", RelAtom("edge", [Var("w2"), Var(var)])),
        )

    colored = Forall(
        "x",
        Implies(
            vertex("x"),
            OrF(
                RelAtom("R", [Var("x")]),
                RelAtom("G", [Var("x")]),
                RelAtom("B", [Var("x")]),
            ),
        ),
    )
    exclusive = Forall(
        "x",
        AndF(
            NotF(AndF(RelAtom("R", [Var("x")]), RelAtom("G", [Var("x")]))),
            NotF(AndF(RelAtom("R", [Var("x")]), RelAtom("B", [Var("x")]))),
            NotF(AndF(RelAtom("G", [Var("x")]), RelAtom("B", [Var("x")]))),
        ),
    )
    proper = Forall(
        ("x", "y"),
        Implies(
            RelAtom("edge", [Var("x"), Var("y")]),
            AndF(
                NotF(AndF(RelAtom("R", [Var("x")]), RelAtom("R", [Var("y")]))),
                NotF(AndF(RelAtom("G", [Var("x")]), RelAtom("G", [Var("y")]))),
                NotF(AndF(RelAtom("B", [Var("x")]), RelAtom("B", [Var("y")]))),
            ),
        ),
    )
    return ESOSentence(
        {"R": 1, "G": 1, "B": 1}, AndF(colored, exclusive, proper)
    )


def graph_database(edges, name="edge"):
    """A graph as a structure: one binary ``edge`` relation."""
    schema = RelationSchema(name, ("src", "dst"))
    return Database([Relation(schema, [tuple(e) for e in edges])])


def is_three_colorable(edges):
    """Direct backtracking 3-coloring (the algorithmic comparator)."""
    vertices = sorted({v for e in edges for v in e}, key=repr)
    adjacency = {v: set() for v in vertices}
    for a, b in edges:
        if a == b:
            return False
        adjacency[a].add(b)
        adjacency[b].add(a)
    coloring = {}

    def assign(index):
        if index == len(vertices):
            return True
        vertex = vertices[index]
        for color in (0, 1, 2):
            if all(
                coloring.get(neighbor) != color
                for neighbor in adjacency[vertex]
            ):
                coloring[vertex] = color
                if assign(index + 1):
                    return True
                del coloring[vertex]
        return False

    return assign(0)


def three_colorable_via_fagin(edges):
    """3-colorability decided by ESO model checking (tiny graphs only)."""
    return check(three_colorability_sentence(), graph_database(edges))
