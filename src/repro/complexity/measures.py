"""Data vs combined complexity: the measurement harness.

Vardi's classical taxonomy (firmly part of the "metatheory" the paper
surveys): fix the query and grow the database (**data complexity** —
polynomial for FO and Datalog), or grow the query too (**combined
complexity** — PSPACE-hard for FO).  This harness produces the empirical
curves; the ``test_cook_fagin`` benchmark prints them, and a test asserts
the qualitative separation (combined growth ratio dwarfs data growth
ratio on matched sweeps).
"""

from __future__ import annotations

import time

from ..relational.calculus import Exists, RelAtom, Query, AndF, Var
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import RelationSchema


def chain_database(length, fanout=1, name="edge"):
    """A path graph (optionally with parallel edges) as a database."""
    edges = []
    for i in range(length):
        for j in range(fanout):
            edges.append((i, i + 1))
    schema = RelationSchema(name, ("src", "dst"))
    return Database([Relation(schema, set(edges))])


def kpath_query(k, relation="edge"):
    """The FO query "there is a path of length k from x to y".

    Query size grows with k — the combined-complexity knob.
    """
    variables = ["x"] + ["m%d" % i for i in range(1, k)] + ["y"]
    atoms = [
        RelAtom(relation, [Var(variables[i]), Var(variables[i + 1])])
        for i in range(k)
    ]
    inner = AndF(*atoms) if len(atoms) > 1 else atoms[0]
    middles = variables[1:-1]
    formula = Exists(middles, inner) if middles else inner
    return Query(["x", "y"], formula)


def timed(callable_, *args, repeat=1):
    """Best-of-``repeat`` wall-clock timing; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = callable_(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def data_complexity_curve(sizes, k=3, evaluator=None):
    """Fixed query (k-path), growing database.

    Returns:
        List of ``(n, seconds, answers)`` rows.
    """
    from ..relational.codd import calculus_to_algebra
    from ..relational.algebra import evaluate

    query = kpath_query(k)
    rows = []
    for n in sizes:
        db = chain_database(n)
        if evaluator is None:
            expr = calculus_to_algebra(query, db.schema())
            seconds, result = timed(evaluate, expr, db)
        else:
            seconds, result = timed(evaluator, query, db)
        rows.append((n, seconds, len(result)))
    return rows


def combined_complexity_curve(ks, n=12, evaluator=None):
    """Fixed database, growing query (k-path for k in ``ks``).

    Returns:
        List of ``(k, seconds, answers)`` rows.
    """
    from ..relational.calculus import evaluate_query

    db = chain_database(n)
    rows = []
    for k in ks:
        query = kpath_query(k)
        if evaluator is None:
            seconds, result = timed(evaluate_query, query, db)
        else:
            seconds, result = timed(evaluator, query, db)
        rows.append((k, seconds, len(result)))
    return rows


def growth_ratio(rows):
    """Last/first timing ratio of a curve (the qualitative summary)."""
    first = max(rows[0][1], 1e-9)
    return rows[-1][1] / first
