"""CNF formulas.

Literals are nonzero ints (DIMACS convention): ``+v`` asserts variable
``v``, ``-v`` negates it.  A clause is a frozenset of literals; a CNF is a
list of clauses.  This is the target language of Cook's reduction and the
input language of the DPLL solver.
"""

from __future__ import annotations

import itertools

from ..errors import ComplexityError


class CNF:
    """A CNF formula with a variable counter and clause list."""

    __slots__ = ("clauses", "num_vars")

    def __init__(self, clauses=(), num_vars=0):
        self.clauses = []
        self.num_vars = num_vars
        for clause in clauses:
            self.add_clause(clause)

    def new_var(self):
        """Allocate a fresh variable; returns its (positive) index."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals):
        """Add a clause; tautologies are dropped, empty clauses rejected."""
        clause = frozenset(int(l) for l in literals)
        if 0 in clause:
            raise ComplexityError("0 is not a literal")
        if any(-l in clause for l in clause):
            return  # tautology: x or not x
        if not clause:
            raise ComplexityError(
                "explicit empty clause; the formula is trivially UNSAT"
            )
        self.num_vars = max(
            self.num_vars, max(abs(l) for l in clause)
        )
        self.clauses.append(clause)

    def add_exactly_one(self, variables):
        """Clauses encoding "exactly one of ``variables`` is true"."""
        variables = list(variables)
        if not variables:
            raise ComplexityError("exactly-one over no variables")
        self.add_clause(variables)  # at least one
        for a, b in itertools.combinations(variables, 2):
            self.add_clause([-a, -b])  # at most one

    def add_implication(self, antecedents, consequent):
        """Clause for ``(a1 and ... and ak) -> c``."""
        self.add_clause([-a for a in antecedents] + [consequent])

    def evaluate(self, assignment):
        """Truth under a total assignment ``{var: bool}``."""
        for clause in self.clauses:
            if not any(
                assignment[abs(l)] == (l > 0) for l in clause
            ):
                return False
        return True

    def brute_force_satisfiable(self, limit_vars=22):
        """Exhaustive satisfiability (the oracle for solver tests)."""
        if self.num_vars > limit_vars:
            raise ComplexityError(
                "brute force over %d variables refused (limit %d)"
                % (self.num_vars, limit_vars)
            )
        variables = range(1, self.num_vars + 1)
        for bits in itertools.product((False, True), repeat=self.num_vars):
            assignment = dict(zip(variables, bits))
            if self.evaluate(assignment):
                return assignment
        return None

    def stats(self):
        """(variables, clauses, total literals) — reduction-size metrics."""
        return (
            self.num_vars,
            len(self.clauses),
            sum(len(c) for c in self.clauses),
        )

    def __len__(self):
        return len(self.clauses)

    def __repr__(self):
        return "CNF(%d vars, %d clauses)" % (self.num_vars, len(self.clauses))


def random_3sat(num_vars, num_clauses, seed=0):
    """Uniform random 3-SAT (benchmark workload near/away from threshold)."""
    import random

    rng = random.Random(seed)
    cnf = CNF(num_vars=num_vars)
    produced = 0
    while produced < num_clauses:
        chosen = rng.sample(range(1, num_vars + 1), 3)
        clause = [v if rng.random() < 0.5 else -v for v in chosen]
        before = len(cnf.clauses)
        cnf.add_clause(clause)
        if len(cnf.clauses) > before:
            produced += 1
    return cnf
