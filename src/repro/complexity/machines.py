"""Nondeterministic Turing machines (the substrate of Cook's Theorem).

A one-tape NTM with a left-bounded tape.  The transition function maps
``(state, symbol)`` to a *set* of ``(state, symbol, move)`` choices; the
machine accepts an input iff some computation path reaches the accepting
state within the step bound.

:func:`accepts` decides bounded acceptance by breadth-first search over
configurations — the semantic oracle that the Cook reduction is verified
against.
"""

from __future__ import annotations

from ..errors import ComplexityError

#: Head movement directions.
LEFT, RIGHT, STAY = -1, 1, 0

#: The blank tape symbol.
BLANK = "_"


class NTM:
    """A nondeterministic Turing machine.

    Args:
        states: iterable of state names.
        input_alphabet: symbols inputs may use.
        tape_alphabet: superset of the input alphabet, containing BLANK.
        transitions: ``{(state, symbol): [(state, symbol, move), ...]}``.
        start: initial state.
        accept: accepting state (absorbing: the reduction and the
            semantics both treat reaching it as final).
    """

    __slots__ = (
        "states",
        "input_alphabet",
        "tape_alphabet",
        "transitions",
        "start",
        "accept",
    )

    def __init__(
        self, states, input_alphabet, tape_alphabet, transitions, start, accept
    ):
        self.states = tuple(states)
        self.input_alphabet = tuple(input_alphabet)
        self.tape_alphabet = tuple(tape_alphabet)
        if BLANK not in self.tape_alphabet:
            raise ComplexityError("tape alphabet must contain the blank %r" % BLANK)
        if start not in self.states or accept not in self.states:
            raise ComplexityError("start/accept must be states")
        self.start = start
        self.accept = accept
        self.transitions = {}
        for (state, symbol), choices in transitions.items():
            if state not in self.states:
                raise ComplexityError("unknown state %r" % (state,))
            if symbol not in self.tape_alphabet:
                raise ComplexityError("unknown symbol %r" % (symbol,))
            checked = []
            for next_state, write, move in choices:
                if next_state not in self.states:
                    raise ComplexityError("unknown state %r" % (next_state,))
                if write not in self.tape_alphabet:
                    raise ComplexityError("unknown symbol %r" % (write,))
                if move not in (LEFT, RIGHT, STAY):
                    raise ComplexityError("move must be -1, 0, or 1")
                checked.append((next_state, write, move))
            self.transitions[(state, symbol)] = tuple(checked)

    def choices(self, state, symbol):
        """Available transitions (empty tuple = halt-reject branch)."""
        return self.transitions.get((state, symbol), ())

    def is_deterministic(self):
        return all(len(c) <= 1 for c in self.transitions.values())


def accepts(machine, word, max_steps):
    """Bounded nondeterministic acceptance, by configuration BFS.

    Args:
        machine: the NTM.
        word: input as a string or symbol sequence.
        max_steps: step bound (Cook's T).

    Returns:
        True iff some path accepts within ``max_steps`` steps.
    """
    word = tuple(word)
    for symbol in word:
        if symbol not in machine.input_alphabet:
            raise ComplexityError("input symbol %r not in alphabet" % (symbol,))
    tape_len = max(len(word), 1) + max_steps + 1
    initial_tape = word + (BLANK,) * (tape_len - len(word))
    start = (machine.start, 0, initial_tape)
    frontier = {start}
    seen = {start}
    for _ in range(max_steps + 1):
        for state, head, tape in frontier:
            if state == machine.accept:
                return True
        next_frontier = set()
        for state, head, tape in frontier:
            if state == machine.accept:
                continue
            for next_state, write, move in machine.choices(state, tape[head]):
                new_tape = tape
                if write != tape[head]:
                    new_tape = tape[:head] + (write,) + tape[head + 1:]
                new_head = min(max(head + move, 0), tape_len - 1)
                config = (next_state, new_head, new_tape)
                if config not in seen:
                    seen.add(config)
                    next_frontier.add(config)
        frontier = next_frontier
        if not frontier:
            return False
    return False


# ---------------------------------------------------------------------------
# Example machines (used by tests and the Cook benchmark)
# ---------------------------------------------------------------------------


def machine_contains_one():
    """NTM accepting binary strings containing at least one '1'.

    Deterministic scanner — the simplest sanity machine.
    """
    return NTM(
        states=("scan", "yes"),
        input_alphabet=("0", "1"),
        tape_alphabet=("0", "1", BLANK),
        transitions={
            ("scan", "0"): [("scan", "0", RIGHT)],
            ("scan", "1"): [("yes", "1", STAY)],
            ("yes", "0"): [("yes", "0", STAY)],
            ("yes", "1"): [("yes", "1", STAY)],
            ("yes", BLANK): [("yes", BLANK, STAY)],
        },
        start="scan",
        accept="yes",
    )


def machine_guess_equal_ends():
    """NTM accepting strings whose first and last symbols are equal.

    Genuinely nondeterministic: at the start it *guesses* the first
    symbol's value by branching, then verifies at the end — the guess-and-
    check shape Cook's reduction exists to capture.
    """
    return NTM(
        states=("start", "saw0", "saw1", "at_end0", "at_end1", "yes"),
        input_alphabet=("0", "1"),
        tape_alphabet=("0", "1", BLANK),
        transitions={
            # The first symbol may itself be the last (length-1 words).
            ("start", "0"): [("saw0", "0", RIGHT), ("at_end0", "0", RIGHT)],
            ("start", "1"): [("saw1", "1", RIGHT), ("at_end1", "1", RIGHT)],
            # Scan right; nondeterministically decide "this is the last".
            ("saw0", "0"): [("saw0", "0", RIGHT), ("at_end0", "0", RIGHT)],
            ("saw0", "1"): [("saw0", "1", RIGHT)],
            ("saw1", "1"): [("saw1", "1", RIGHT), ("at_end1", "1", RIGHT)],
            ("saw1", "0"): [("saw1", "0", RIGHT)],
            # Verify the guess: next cell must be blank.
            ("at_end0", BLANK): [("yes", BLANK, STAY)],
            ("at_end1", BLANK): [("yes", BLANK, STAY)],
            ("yes", BLANK): [("yes", BLANK, STAY)],
            ("yes", "0"): [("yes", "0", STAY)],
            ("yes", "1"): [("yes", "1", STAY)],
        },
        start="start",
        accept="yes",
    )
