"""Cook's Theorem, constructively: bounded NTM acceptance -> SAT.

The paper calls Cook's Theorem "positive as a metatheorem, in that it
reduces the complexity not of the artifact, but of the mathematical
landscape".  This module builds the landscape bridge explicitly: given an
NTM, an input, and a step bound T, it emits a CNF that is satisfiable iff
the machine accepts within T steps.  The ``test_cook_fagin`` benchmark
round-trips the construction against the BFS acceptance oracle and the
DPLL solver.

Encoding (the standard computation-tableau one):

* ``C[t][i][s]`` — at time t, tape cell i holds symbol s;
* ``H[t][i]``   — at time t, the head is on cell i;
* ``Q[t][q]``   — at time t, the machine is in state q;

with exactly-one constraints per group, initial-configuration unit
clauses, frame axioms (cells away from the head persist), Tseitin-encoded
transition choices, and the acceptance clause ``Q[T][accept]`` (the
accepting state is absorbing in the machines we reduce, so reaching it
earlier also satisfies the formula via the added accept self-loops).
"""

from __future__ import annotations

from ..errors import ComplexityError
from .boolean import CNF
from .machines import BLANK


class CookReduction:
    """The CNF for one (machine, word, bound) triple, plus its var maps."""

    __slots__ = ("machine", "word", "bound", "cnf", "cell", "head", "state")

    def __init__(self, machine, word, bound):
        self.machine = machine
        self.word = tuple(word)
        self.bound = bound
        self.cnf = CNF()
        self.cell = {}
        self.head = {}
        self.state = {}
        self._build()

    # -- variable allocation -------------------------------------------------

    def _cell_var(self, t, i, s):
        key = (t, i, s)
        if key not in self.cell:
            self.cell[key] = self.cnf.new_var()
        return self.cell[key]

    def _head_var(self, t, i):
        key = (t, i)
        if key not in self.head:
            self.head[key] = self.cnf.new_var()
        return self.head[key]

    def _state_var(self, t, q):
        key = (t, q)
        if key not in self.state:
            self.state[key] = self.cnf.new_var()
        return self.state[key]

    # -- construction -----------------------------------------------------------

    def _build(self):
        machine, word, T = self.machine, self.word, self.bound
        tape_len = max(len(word), 1) + T + 1
        cells = range(tape_len)
        symbols = machine.tape_alphabet
        states = machine.states

        # Exactly-one structure at every time step.
        for t in range(T + 1):
            for i in cells:
                self.cnf.add_exactly_one(
                    [self._cell_var(t, i, s) for s in symbols]
                )
            self.cnf.add_exactly_one([self._head_var(t, i) for i in cells])
            self.cnf.add_exactly_one([self._state_var(t, q) for q in states])

        # Initial configuration.
        for i in cells:
            symbol = word[i] if i < len(word) else BLANK
            self.cnf.add_clause([self._cell_var(0, i, symbol)])
        self.cnf.add_clause([self._head_var(0, 0)])
        self.cnf.add_clause([self._state_var(0, machine.start)])

        # Frame axioms: unvisited cells persist.
        for t in range(T):
            for i in cells:
                for s in symbols:
                    self.cnf.add_clause(
                        [
                            -self._cell_var(t, i, s),
                            self._head_var(t, i),
                            self._cell_var(t + 1, i, s),
                        ]
                    )

        # Transitions, Tseitin-encoded choice per (t, i, q, s).
        for t in range(T):
            for i in cells:
                for q in states:
                    for s in symbols:
                        self._encode_step(t, i, q, s, tape_len)

        # Acceptance at the horizon.
        self.cnf.add_clause([self._state_var(T, machine.accept)])

    def _encode_step(self, t, i, q, s, tape_len):
        """If head@i, state q, reading s at time t: some choice fires."""
        premise = [
            self._head_var(t, i),
            self._state_var(t, q),
            self._cell_var(t, i, s),
        ]
        choices = self.machine.choices(q, s)
        if not choices:
            # Halting (rejecting) configuration: forbid it before accept.
            self.cnf.add_clause([-v for v in premise])
            return
        selectors = []
        for next_state, write, move in choices:
            selector = self.cnf.new_var()
            selectors.append(selector)
            new_head = min(max(i + move, 0), tape_len - 1)
            self.cnf.add_clause(
                [-selector, self._state_var(t + 1, next_state)]
            )
            self.cnf.add_clause([-selector, self._cell_var(t + 1, i, write)])
            self.cnf.add_clause([-selector, self._head_var(t + 1, new_head)])
        self.cnf.add_clause([-v for v in premise] + selectors)


def cook_reduction(machine, word, bound):
    """Build the Cook CNF; requires an absorbing accepting state.

    Raises:
        ComplexityError: if the accept state can halt with no move (the
            encoding needs accept self-loops so "accepted earlier" can
            persist to the horizon).
    """
    for s in machine.tape_alphabet:
        if not machine.choices(machine.accept, s):
            raise ComplexityError(
                "accept state must be absorbing (add self-loops on %r)" % (s,)
            )
    return CookReduction(machine, word, bound)


def accepts_via_sat(machine, word, bound):
    """Decide bounded acceptance by reduction + DPLL.

    The round-trip asserted by the tests:
    ``accepts_via_sat == machines.accepts`` on every (machine, word, T).
    """
    from .sat import solve

    reduction = cook_reduction(machine, word, bound)
    return solve(reduction.cnf).satisfiable
